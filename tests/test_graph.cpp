#include "overlay/graph.hpp"
#include "overlay/topology.hpp"

#include <gtest/gtest.h>

#include <set>

namespace aar::overlay {
namespace {

TEST(Graph, AddEdgeRejectsSelfLoopsAndDuplicates) {
  Graph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(1, 0));  // duplicate (undirected)
  EXPECT_FALSE(g.add_edge(2, 2));  // self-loop
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(Graph, HasEdgeIsSymmetric) {
  Graph g(4);
  g.add_edge(1, 3);
  EXPECT_TRUE(g.has_edge(1, 3));
  EXPECT_TRUE(g.has_edge(3, 1));
  EXPECT_FALSE(g.has_edge(1, 2));
}

TEST(Graph, NeighborsReflectEdges) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  const auto neighbors = g.neighbors(0);
  const std::set<NodeId> set(neighbors.begin(), neighbors.end());
  EXPECT_EQ(set, (std::set<NodeId>{1, 2}));
}

TEST(Graph, ConnectivityDetection) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(Graph, EmptyAndSingletonAreConnected) {
  EXPECT_TRUE(Graph(0).is_connected());
  EXPECT_TRUE(Graph(1).is_connected());
}

TEST(Graph, BfsDistancesOnALine) {
  Graph g(5);
  for (NodeId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  const auto d = g.bfs_distances(0);
  for (NodeId i = 0; i < 5; ++i) EXPECT_EQ(d[i], i);
  EXPECT_EQ(g.eccentricity(0), 4u);
  EXPECT_EQ(g.eccentricity(2), 2u);
}

TEST(Graph, BfsMarksUnreachable) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = g.bfs_distances(0);
  EXPECT_EQ(d[2], Graph::kUnreachable);
  EXPECT_EQ(g.eccentricity(0), 1u);  // ignores the unreachable node
}

TEST(Graph, AverageDegree) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(g.average_degree(), 1.0);
  EXPECT_DOUBLE_EQ(Graph(0).average_degree(), 0.0);
}

// --- topology generators -----------------------------------------------------

TEST(Topology, ConnectComponentsStitchesEverything) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  util::Rng rng(1);
  const std::size_t added = connect_components(g, rng);
  EXPECT_GE(added, 2u);  // at least: {2,3} component + 4 + 5
  EXPECT_TRUE(g.is_connected());
}

TEST(Topology, ErdosRenyiShape) {
  util::Rng rng(2);
  const Graph g = make_erdos_renyi(200, 400, rng);
  EXPECT_EQ(g.num_nodes(), 200u);
  EXPECT_GE(g.num_edges(), 400u);  // fix-up can add a few
  EXPECT_TRUE(g.is_connected());
}

TEST(Topology, ErdosRenyiCapsAtCompleteGraph) {
  util::Rng rng(3);
  const Graph g = make_erdos_renyi(5, 1'000, rng);
  EXPECT_EQ(g.num_edges(), 10u);  // C(5,2)
}

TEST(Topology, BarabasiAlbertShape) {
  util::Rng rng(4);
  const Graph g = make_barabasi_albert(500, 3, rng);
  EXPECT_EQ(g.num_nodes(), 500u);
  EXPECT_TRUE(g.is_connected());
  // Each newcomer adds ~3 edges plus the seed clique.
  EXPECT_GE(g.num_edges(), 3 * (500 - 4));
  EXPECT_LE(g.num_edges(), 3 * 500 + 6);
}

TEST(Topology, BarabasiAlbertIsHubby) {
  util::Rng rng(5);
  const Graph g = make_barabasi_albert(1'000, 3, rng);
  std::size_t max_degree = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    max_degree = std::max(max_degree, g.degree(n));
  }
  // Preferential attachment produces hubs far above the mean (~6).
  EXPECT_GT(max_degree, 30u);
}

TEST(Topology, WattsStrogatzZeroBetaIsRingLattice) {
  util::Rng rng(6);
  const Graph g = make_watts_strogatz(50, 4, 0.0, rng);
  EXPECT_TRUE(g.is_connected());
  for (NodeId n = 0; n < g.num_nodes(); ++n) EXPECT_EQ(g.degree(n), 4u);
}

TEST(Topology, WattsStrogatzRewiringKeepsConnectivity) {
  util::Rng rng(7);
  const Graph g = make_watts_strogatz(200, 6, 0.3, rng);
  EXPECT_TRUE(g.is_connected());
  EXPECT_NEAR(g.average_degree(), 6.0, 0.5);
}

// Property sweep: every generator yields a connected graph at various sizes.
struct TopoCase {
  const char* name;
  std::size_t nodes;
};

class TopologySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TopologySweep, AllGeneratorsConnected) {
  const std::size_t n = GetParam();
  util::Rng rng(n);
  EXPECT_TRUE(make_erdos_renyi(n, 2 * n, rng).is_connected());
  EXPECT_TRUE(make_barabasi_albert(n, 2, rng).is_connected());
  EXPECT_TRUE(make_watts_strogatz(n, 4, 0.2, rng).is_connected());
}

INSTANTIATE_TEST_SUITE_P(Sizes, TopologySweep,
                         ::testing::Values(10, 50, 100, 500));

}  // namespace
}  // namespace aar::overlay
