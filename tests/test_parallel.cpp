#include "util/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace aar::util {
namespace {

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&counter] { counter.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPool, WaitOnIdlePoolReturns) {
  ThreadPool pool(2);
  pool.wait();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, DestructorDrainsGracefully) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
    pool.wait();
  }
  EXPECT_EQ(counter.load(), 20);
}

TEST(ParallelFor, CoversEntireRange) {
  std::vector<std::atomic<int>> touched(1000);
  parallel_for(0, touched.size(),
               [&touched](std::size_t i) { touched[i].fetch_add(1); }, 4);
  for (const auto& t : touched) EXPECT_EQ(t.load(), 1);
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  std::atomic<int> calls{0};
  parallel_for(5, 5, [&calls](std::size_t) { calls.fetch_add(1); }, 4);
  parallel_for(7, 3, [&calls](std::size_t) { calls.fetch_add(1); }, 4);
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, SingleThreadIsSequential) {
  std::vector<std::size_t> order;
  parallel_for(0, 10, [&order](std::size_t i) { order.push_back(i); }, 1);
  ASSERT_EQ(order.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelFor, SumReduction) {
  constexpr std::size_t kN = 10'000;
  std::atomic<long long> total{0};
  parallel_for(0, kN,
               [&total](std::size_t i) {
                 total.fetch_add(static_cast<long long>(i));
               },
               8);
  EXPECT_EQ(total.load(), static_cast<long long>(kN * (kN - 1) / 2));
}

TEST(ParallelFor, NonZeroBegin) {
  std::atomic<int> calls{0};
  parallel_for(90, 100, [&calls](std::size_t i) {
    EXPECT_GE(i, 90u);
    EXPECT_LT(i, 100u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 10);
}

// ISSUE 2 satellite: submit+wait stress with instrumented tasks.  A producer
// thread keeps submitting while the main thread cycles wait(), and every
// task bumps a sharded obs counter — the workload the CI TSan job checks
// for lost updates, torn waits, and counter races.
TEST(ThreadPool, ConcurrentSubmitWaitStressWithObsCounters) {
  obs::Counter bumps;
  std::atomic<int> executed{0};
  constexpr int kProducerTasks = 500;
  constexpr int kMainTasks = 200;
  {
    ThreadPool pool(4);
    std::thread producer([&] {
      for (int i = 0; i < kProducerTasks; ++i) {
        pool.submit([&] {
          bumps.add();
          executed.fetch_add(1);
        });
      }
    });
    for (int i = 0; i < kMainTasks; ++i) {
      pool.submit([&] {
        bumps.add();
        executed.fetch_add(1);
      });
      if (i % 10 == 0) pool.wait();  // interleave waits with foreign submits
    }
    producer.join();
    pool.wait();
  }
  EXPECT_EQ(executed.load(), kProducerTasks + kMainTasks);
#ifndef AAR_OBS_OFF
  EXPECT_EQ(bumps.value(),
            static_cast<std::uint64_t>(kProducerTasks + kMainTasks));
#endif
}

// ISSUE 3 satellite: the old contract was "tasks must not throw; exceptions
// terminate".  Now the first task exception is captured and rethrown from
// wait(), the remaining tasks still run, and the pool stays usable.
TEST(ThreadPool, WaitRethrowsFirstTaskException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  pool.submit([] { throw std::runtime_error("task failed"); });
  for (int i = 0; i < 10; ++i) {
    pool.submit([&ran] { ran.fetch_add(1); });
  }
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(ran.load(), 10);  // the exception did not cancel queued tasks
}

TEST(ThreadPool, PoolStaysUsableAfterRethrow) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The captured exception was cleared by the rethrowing wait().
  pool.wait();
  std::atomic<int> ran{0};
  pool.submit([&ran] { ran.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, OnlyFirstExceptionIsKept) {
  ThreadPool pool(1);  // serial workers make "first" deterministic
  pool.submit([] { throw std::runtime_error("first"); });
  pool.submit([] { throw std::logic_error("second"); });
  try {
    pool.wait();
    FAIL() << "wait() must rethrow";
  } catch (const std::runtime_error& error) {
    EXPECT_STREQ(error.what(), "first");
  }
  pool.wait();  // the second exception was swallowed, not queued for later
}

TEST(ThreadPool, DestructorSwallowsUnretrievedException) {
  {
    ThreadPool pool(2);
    pool.submit([] { throw std::runtime_error("never waited on"); });
  }  // must not terminate or rethrow from the destructor
  SUCCEED();
}

TEST(ParallelFor, PropagatesBodyException) {
  std::atomic<int> calls{0};
  EXPECT_THROW(parallel_for(0, 100,
                            [&calls](std::size_t i) {
                              calls.fetch_add(1);
                              if (i == 50) throw std::runtime_error("body");
                            },
                            4),
               std::runtime_error);
  EXPECT_GT(calls.load(), 0);
}

TEST(ParallelFor, ShardedCounterMatchesRange) {
  obs::Counter counter;
  constexpr std::size_t kN = 50'000;
  parallel_for(0, kN, [&counter](std::size_t) { counter.add(); }, 8);
#ifndef AAR_OBS_OFF
  EXPECT_EQ(counter.value(), kN);
#endif
}

}  // namespace
}  // namespace aar::util
