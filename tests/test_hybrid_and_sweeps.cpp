// Hybrid shortcut+association policy, and cross-seed property sweeps over
// the paper's headline orderings (the shapes must hold for any seed, not
// just the calibrated default).

#include <gtest/gtest.h>

#include <memory>

#include "core/strategy.hpp"
#include "core/trace_simulator.hpp"
#include "overlay/experiment.hpp"
#include "overlay/hybrid.hpp"
#include "trace/generator.hpp"

namespace aar {
namespace {

// --- hybrid policy ---------------------------------------------------------------

TEST(HybridPolicy, DelegatesLearningAndProbing) {
  overlay::HybridConfig config;
  config.association.rebuild_every = 4;
  config.association.min_support = 2;
  overlay::HybridShortcutsAssociationPolicy policy(config);
  EXPECT_EQ(policy.name(), "shortcuts+association");
  EXPECT_TRUE(policy.wants_flood_fallback());

  overlay::Query query;
  // Association side learns from reply paths...
  for (trace::Guid g = 1; g <= 8; ++g) {
    query.guid = g;
    policy.on_reply_path(query, 0, 7, 3);
  }
  EXPECT_TRUE(policy.association().rules().matches(7, 3));
  // ...and the shortcut list learns from search results.
  policy.on_search_result(query, 0, true, 42);
  std::vector<overlay::NodeId> probes;
  policy.probe_candidates(query, 0, probes);
  EXPECT_EQ(probes, (std::vector<overlay::NodeId>{42}));
}

TEST(HybridPolicy, RoutesThroughAssociationRules) {
  overlay::HybridConfig config;
  config.association.rebuild_every = 4;
  config.association.min_support = 2;
  overlay::HybridShortcutsAssociationPolicy policy(config);
  overlay::Query query;
  for (trace::Guid g = 1; g <= 8; ++g) {
    query.guid = g;
    policy.on_reply_path(query, 0, 7, 3);
  }
  util::Rng rng(1);
  std::vector<overlay::NodeId> out;
  const std::vector<overlay::NodeId> neighbors{1, 3, 9};
  EXPECT_TRUE(policy.route(query, 0, 7, neighbors, rng, out));
  EXPECT_EQ(out, (std::vector<overlay::NodeId>{3}));
}

TEST(HybridPolicy, BeatsOrMatchesPlainAssociationOnTraffic) {
  overlay::ExperimentConfig config;
  config.seed = 61;
  config.nodes = 400;
  config.warmup_queries = 1'200;
  config.measure_queries = 1'200;
  overlay::Network assoc_net =
      overlay::make_network(config, [](overlay::NodeId) {
        return std::make_unique<overlay::AssociationRoutingPolicy>();
      });
  const auto assoc = overlay::run_experiment("assoc", assoc_net, config);
  overlay::Network hybrid_net =
      overlay::make_network(config, [](overlay::NodeId) {
        return std::make_unique<overlay::HybridShortcutsAssociationPolicy>();
      });
  const auto hybrid = overlay::run_experiment("hybrid", hybrid_net, config);
  EXPECT_LT(hybrid.total_messages.mean(), 1.1 * assoc.total_messages.mean());
  EXPECT_GT(hybrid.success_rate(), assoc.success_rate() - 0.02);
}

// --- cross-seed orderings ----------------------------------------------------------

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::vector<trace::QueryReplyPair> make_pairs() {
    trace::TraceConfig config;
    config.seed = GetParam();
    config.block_size = 2'000;
    config.active_hosts = 60;
    trace::TraceGenerator generator(config);
    return generator.generate_pairs(50 * 2'000);
  }
};

TEST_P(SeedSweep, PaperOrderingsHold) {
  const auto pairs = make_pairs();
  core::StaticRuleset static_strategy(10);
  core::SlidingWindow sliding(10);
  core::LazySlidingWindow lazy(10, 10);
  core::AdaptiveSlidingWindow adaptive(10, 10);
  core::IncrementalRuleset incremental(10);

  const auto r_static = core::run_trace_simulation(static_strategy, pairs, 2'000);
  const auto r_sliding = core::run_trace_simulation(sliding, pairs, 2'000);
  const auto r_lazy = core::run_trace_simulation(lazy, pairs, 2'000);
  const auto r_adaptive = core::run_trace_simulation(adaptive, pairs, 2'000);
  const auto r_incremental =
      core::run_trace_simulation(incremental, pairs, 2'000);

  // The paper's qualitative ordering on both measures:
  //   static < lazy < {adaptive <= sliding} < incremental (coverage)
  EXPECT_LT(r_static.avg_coverage(), r_lazy.avg_coverage());
  EXPECT_LT(r_lazy.avg_coverage(), r_sliding.avg_coverage());
  EXPECT_LE(r_adaptive.avg_coverage(), r_sliding.avg_coverage() + 0.02);
  EXPECT_GT(r_incremental.avg_coverage(), r_sliding.avg_coverage());

  EXPECT_LT(r_static.avg_success(), r_lazy.avg_success());
  EXPECT_LT(r_lazy.avg_success(), r_sliding.avg_success());

  // Adaptive regenerates less often than sliding, more than lazy.
  EXPECT_LT(r_adaptive.rulesets_generated, r_sliding.rulesets_generated);
  EXPECT_GT(r_adaptive.rulesets_generated, r_lazy.rulesets_generated);

  // Static's success must collapse: the tail mean is near zero.
  EXPECT_LT(r_static.success.tail_mean(10), 0.15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(101, 202, 303, 404, 505));

}  // namespace
}  // namespace aar
