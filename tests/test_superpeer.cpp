#include "overlay/superpeer.hpp"

#include <gtest/gtest.h>

namespace aar::overlay {
namespace {

SuperPeerConfig small_config() {
  SuperPeerConfig config;
  config.seed = 3;
  config.leaves = 300;
  config.super_peers = 12;
  config.super_peer_degree = 4;
  config.files_per_leaf = 10;
  config.content.files = 2'000;
  config.content.categories = 16;
  return config;
}

TEST(SuperPeer, ConstructionShapes) {
  SuperPeerNetwork net(small_config());
  EXPECT_EQ(net.num_leaves(), 300u);
  EXPECT_EQ(net.num_super_peers(), 12u);
  EXPECT_TRUE(net.super_graph().is_connected());
  for (std::size_t leaf = 0; leaf < net.num_leaves(); ++leaf) {
    EXPECT_LT(net.super_peer_of(leaf), net.num_super_peers());
  }
}

TEST(SuperPeer, LocalIndexHitIsTwoMessages) {
  SuperPeerNetwork net(small_config());
  // Find a leaf and a file stored at another leaf of the SAME super-peer.
  for (std::size_t leaf = 0; leaf < net.num_leaves(); ++leaf) {
    for (std::size_t other = 0; other < net.num_leaves(); ++other) {
      if (other == leaf || net.super_peer_of(other) != net.super_peer_of(leaf)) {
        continue;
      }
      // Query for anything `other` shares.
      for (int attempt = 0; attempt < 50; ++attempt) {
        const workload::FileId file = net.sample_target(other);
        if (net.replica_count(file) == 0) continue;
        // Any file with a replica under this super-peer gives a local hit if
        // queried from its sibling; just check the accounting.
        const SuperPeerOutcome outcome = net.search(leaf, file);
        if (outcome.local_hit) {
          EXPECT_TRUE(outcome.hit);
          EXPECT_EQ(outcome.query_messages, 1u);
          EXPECT_EQ(outcome.reply_messages, 1u);
          EXPECT_EQ(outcome.hops, 1u);
          return;
        }
      }
    }
  }
  GTEST_SKIP() << "no local-hit pair sampled";
}

TEST(SuperPeer, MissingFileMissesEverywhere) {
  SuperPeerNetwork net(small_config());
  // Find an unreplicated file.
  workload::FileId missing = workload::kNoFile;
  for (workload::FileId f = net.catalogue().size(); f-- > 0;) {
    if (net.replica_count(f) == 0) {
      missing = f;
      break;
    }
  }
  ASSERT_NE(missing, workload::kNoFile);
  const SuperPeerOutcome outcome = net.search(0, missing);
  EXPECT_FALSE(outcome.hit);
  EXPECT_EQ(outcome.reply_messages, 0u);
  // Leaf->SP message plus a full super-peer flood.
  EXPECT_GT(outcome.query_messages, net.num_super_peers() / 2);
}

TEST(SuperPeer, FindsEveryReplicatedFile) {
  SuperPeerNetwork net(small_config());
  util::Rng& rng = net.rng();
  std::size_t attempted = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t leaf = rng.index(net.num_leaves());
    const workload::FileId target = net.sample_target(leaf);
    if (net.replica_count(target) == 0) continue;
    ++attempted;
    const SuperPeerOutcome outcome = net.search(leaf, target);
    // TTL 7 flood over a 12-SP connected graph reaches every index.
    EXPECT_TRUE(outcome.hit);
  }
  EXPECT_GT(attempted, 100u);
}

TEST(SuperPeer, FloodCostIsBoundedBySuperPeerCount) {
  SuperPeerNetwork net(small_config());
  util::Rng& rng = net.rng();
  for (int trial = 0; trial < 100; ++trial) {
    const std::size_t leaf = rng.index(net.num_leaves());
    const SuperPeerOutcome outcome = net.search(leaf, net.sample_target(leaf));
    // At most one message per directed super-peer edge, plus leaf->SP.
    EXPECT_LE(outcome.query_messages, 2 * net.super_graph().num_edges() + 1);
  }
}

TEST(SuperPeer, DeterministicForSeed) {
  SuperPeerNetwork a(small_config());
  SuperPeerNetwork b(small_config());
  const SuperPeerOutcome oa = a.search(5, 100);
  const SuperPeerOutcome ob = b.search(5, 100);
  EXPECT_EQ(oa.hit, ob.hit);
  EXPECT_EQ(oa.query_messages, ob.query_messages);
}

}  // namespace
}  // namespace aar::overlay
