// Property suite for the Gnutella codec (satellites of the wire-hardening
// PR): seeded-random serialize -> parse round trips over all five
// descriptor types, the wire-limit reject paths (256-result QueryHit,
// embedded NUL), and slicing-invariance of FrameDecoder — the decoded
// message stream and malformed count must be identical no matter how the
// byte stream is chopped, including byte-at-a-time delivery of garbage.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gnutella/codec.hpp"
#include "util/rng.hpp"

namespace aar::gnutella {
namespace {

std::string random_text(util::Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.below(max_len + 1);
  std::string text;
  text.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    // Printable-ish but deliberately including bytes >= 0x80; only NUL is
    // excluded (the wire format cannot carry it).
    text.push_back(static_cast<char>(1 + rng.below(255)));
  }
  return text;
}

Message random_message(util::Rng& rng) {
  const WireGuid guid = make_wire_guid(rng());
  const std::uint8_t ttl = static_cast<std::uint8_t>(1 + rng.below(9));
  switch (rng.below(5)) {
    case 0:
      return make_ping(guid, ttl);
    case 1: {
      Pong pong;
      pong.port = static_cast<std::uint16_t>(rng.below(65536));
      pong.ip = static_cast<std::uint32_t>(rng());
      pong.shared_files = static_cast<std::uint32_t>(rng.below(100000));
      pong.shared_kb = static_cast<std::uint32_t>(rng.below(1u << 30));
      return make_pong(guid, ttl, pong);
    }
    case 2:
      return make_query(guid, ttl,
                        static_cast<std::uint16_t>(rng.below(65536)),
                        random_text(rng, 64));
    case 3: {
      std::vector<HitResult> results(rng.below(9));
      for (HitResult& result : results) {
        result.file_index = static_cast<std::uint32_t>(rng());
        result.file_size = static_cast<std::uint32_t>(rng());
        result.file_name = random_text(rng, 40);
      }
      Message hit = make_query_hit(guid, ttl, make_wire_guid(rng()),
                                   std::move(results));
      hit.query_hit.port = static_cast<std::uint16_t>(rng.below(65536));
      hit.query_hit.ip = static_cast<std::uint32_t>(rng());
      hit.query_hit.speed = static_cast<std::uint32_t>(rng.below(10000));
      return hit;
    }
    default: {
      Message push;
      push.header.guid = guid;
      push.header.type = MessageType::kPush;
      push.header.ttl = ttl;
      push.opaque.resize(rng.below(64));
      for (std::uint8_t& byte : push.opaque) {
        byte = static_cast<std::uint8_t>(rng.below(256));
      }
      return push;
    }
  }
}

void expect_equal(const Message& a, const Message& b) {
  ASSERT_EQ(a.header.type, b.header.type);
  EXPECT_EQ(a.header.guid, b.header.guid);
  EXPECT_EQ(a.header.ttl, b.header.ttl);
  EXPECT_EQ(a.header.hops, b.header.hops);
  switch (a.header.type) {
    case MessageType::kPing:
      break;
    case MessageType::kPong:
      EXPECT_EQ(a.pong.port, b.pong.port);
      EXPECT_EQ(a.pong.ip, b.pong.ip);
      EXPECT_EQ(a.pong.shared_files, b.pong.shared_files);
      EXPECT_EQ(a.pong.shared_kb, b.pong.shared_kb);
      break;
    case MessageType::kQuery:
      EXPECT_EQ(a.query.min_speed, b.query.min_speed);
      EXPECT_EQ(a.query.search, b.query.search);
      break;
    case MessageType::kQueryHit: {
      EXPECT_EQ(a.query_hit.port, b.query_hit.port);
      EXPECT_EQ(a.query_hit.ip, b.query_hit.ip);
      EXPECT_EQ(a.query_hit.speed, b.query_hit.speed);
      EXPECT_EQ(a.query_hit.servent_guid, b.query_hit.servent_guid);
      ASSERT_EQ(a.query_hit.results.size(), b.query_hit.results.size());
      for (std::size_t i = 0; i < a.query_hit.results.size(); ++i) {
        EXPECT_EQ(a.query_hit.results[i].file_index,
                  b.query_hit.results[i].file_index);
        EXPECT_EQ(a.query_hit.results[i].file_size,
                  b.query_hit.results[i].file_size);
        EXPECT_EQ(a.query_hit.results[i].file_name,
                  b.query_hit.results[i].file_name);
      }
      break;
    }
    case MessageType::kPush:
      EXPECT_EQ(a.opaque, b.opaque);
      break;
  }
}

TEST(CodecProperties, RandomMessagesRoundTripAllTypes) {
  util::Rng rng(0xc0dec);
  for (int trial = 0; trial < 500; ++trial) {
    const Message original = random_message(rng);
    const auto bytes = serialize(original);
    const ParseResult result = parse(bytes);
    ASSERT_TRUE(result.ok())
        << "trial " << trial << ": " << to_string(result.error);
    EXPECT_EQ(result.consumed, bytes.size());
    expect_equal(original, result.message);
  }
}

// --- wire-limit reject paths ---------------------------------------------

std::vector<HitResult> hit_results(std::size_t count) {
  std::vector<HitResult> results(count);
  for (std::size_t i = 0; i < count; ++i) {
    results[i] = {.file_index = static_cast<std::uint32_t>(i),
                  .file_size = 1,
                  .file_name = "f" + std::to_string(i)};
  }
  return results;
}

TEST(CodecProperties, QueryHitAtWireMaximumRoundTrips) {
  const Message hit = make_query_hit(make_wire_guid(1), 4, make_wire_guid(2),
                                     hit_results(kMaxHitResults));
  const ParseResult result = parse(serialize(hit));
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  ASSERT_EQ(result.message.query_hit.results.size(), kMaxHitResults);
  EXPECT_EQ(result.message.query_hit.results.back().file_name, "f254");
  EXPECT_EQ(result.message.query_hit.servent_guid, make_wire_guid(2));
}

TEST(CodecProperties, QueryHitBeyondWireMaximumIsRejected) {
  // Regression: 256 results used to truncate to a one-byte count of 0 and
  // the parser then read the first result's bytes as the servent GUID.
  const Message hit = make_query_hit(make_wire_guid(1), 4, make_wire_guid(2),
                                     hit_results(kMaxHitResults + 1));
  EXPECT_THROW((void)serialize(hit), std::invalid_argument);
}

TEST(CodecProperties, EmbeddedNulInQueryIsRejected) {
  // Regression: "abc\0def" used to serialize, parse back as "abc", and the
  // capture recorded a different QueryKey than was sent.
  const std::string with_nul = std::string("abc\0def", 7);
  EXPECT_THROW((void)make_query(make_wire_guid(1), 4, 0, with_nul),
               std::invalid_argument);
  Message query = make_query(make_wire_guid(1), 4, 0, "abc");
  query.query.search = with_nul;
  EXPECT_THROW((void)serialize(query), std::invalid_argument);
}

TEST(CodecProperties, EmbeddedNulInHitFileNameIsRejected) {
  Message hit = make_query_hit(make_wire_guid(1), 4, make_wire_guid(2),
                               hit_results(1));
  hit.query_hit.results[0].file_name = std::string("a\0b", 3);
  EXPECT_THROW((void)serialize(hit), std::invalid_argument);
}

// --- FrameDecoder slicing invariance -------------------------------------

struct DecodedStream {
  std::vector<std::vector<std::uint8_t>> frames;  ///< re-serialized messages
  std::uint64_t malformed = 0;
};

/// Feed `bytes` in chunks cut at `splits` (ascending offsets) and drain the
/// decoder after every chunk.
DecodedStream decode_sliced(std::span<const std::uint8_t> bytes,
                            const std::vector<std::size_t>& splits) {
  FrameDecoder decoder;
  DecodedStream stream;
  std::size_t start = 0;
  auto drain = [&] {
    while (auto message = decoder.next()) {
      stream.frames.push_back(serialize(*message));
    }
  };
  for (const std::size_t split : splits) {
    decoder.feed(bytes.subspan(start, split - start));
    start = split;
    drain();
  }
  decoder.feed(bytes.subspan(start));
  drain();
  stream.malformed = decoder.malformed_frames();
  return stream;
}

/// A stream mixing valid frames with three kinds of garbage: unknown
/// descriptor types with a declared payload, an oversized payload, and a
/// structurally malformed (unterminated) query.
std::vector<std::uint8_t> garbage_stream(util::Rng& rng,
                                         std::size_t* valid_out) {
  std::vector<std::uint8_t> bytes;
  std::size_t valid = 0;
  for (int i = 0; i < 40; ++i) {
    switch (rng.below(4)) {
      case 0: {  // unknown type carrying a payload that must be skipped
        std::vector<std::uint8_t> frame(Header::kSize);
        const WireGuid guid = make_wire_guid(rng());
        std::copy(guid.begin(), guid.end(), frame.begin());
        frame[16] = 0x31;  // not a 0.4 descriptor
        frame[17] = 1;
        frame[18] = 0;
        const std::uint32_t declared =
            static_cast<std::uint32_t>(rng.below(48));
        frame[19] = static_cast<std::uint8_t>(declared & 0xff);
        for (std::uint32_t b = 0; b < declared; ++b) {
          frame.push_back(static_cast<std::uint8_t>(rng.below(256)));
        }
        bytes.insert(bytes.end(), frame.begin(), frame.end());
        break;
      }
      case 1: {  // malformed payload: query whose string never terminates
        Message query = make_query(make_wire_guid(rng()), 3, 0, "ok");
        std::vector<std::uint8_t> frame = serialize(query);
        frame.back() = 'x';  // overwrite the terminating NUL
        bytes.insert(bytes.end(), frame.begin(), frame.end());
        break;
      }
      default: {
        const Message message = random_message(rng);
        const std::vector<std::uint8_t> frame = serialize(message);
        bytes.insert(bytes.end(), frame.begin(), frame.end());
        ++valid;
        break;
      }
    }
  }
  if (valid_out != nullptr) *valid_out = valid;
  return bytes;
}

TEST(CodecProperties, DecodedStreamIsSlicingInvariant) {
  util::Rng rng(0x51ce);
  for (int trial = 0; trial < 20; ++trial) {
    std::size_t valid = 0;
    const std::vector<std::uint8_t> bytes = garbage_stream(rng, &valid);
    const DecodedStream whole = decode_sliced(bytes, {});
    EXPECT_EQ(whole.frames.size(), valid);

    // Random split points, a different set per trial.
    std::vector<std::size_t> splits;
    for (std::size_t offset = 0; offset < bytes.size();) {
      offset += 1 + rng.below(37);
      if (offset < bytes.size()) splits.push_back(offset);
    }
    const DecodedStream sliced = decode_sliced(bytes, splits);
    EXPECT_EQ(sliced.frames, whole.frames) << "trial " << trial;
    EXPECT_EQ(sliced.malformed, whole.malformed) << "trial " << trial;
  }
}

TEST(CodecProperties, ByteAtATimeGarbageMatchesBulkFeed) {
  // The torn-stream regression: resync used to double-parse and the
  // malformed count depended on chunking.  One byte at a time is the
  // worst case — every truncation state is visited.
  util::Rng rng(0xb17e);
  std::size_t valid = 0;
  const std::vector<std::uint8_t> bytes = garbage_stream(rng, &valid);
  const DecodedStream whole = decode_sliced(bytes, {});

  std::vector<std::size_t> every_byte;
  for (std::size_t offset = 1; offset < bytes.size(); ++offset) {
    every_byte.push_back(offset);
  }
  const DecodedStream trickled = decode_sliced(bytes, every_byte);
  EXPECT_EQ(trickled.frames, whole.frames);
  EXPECT_EQ(trickled.malformed, whole.malformed);
  EXPECT_GT(whole.malformed, 0u);  // the stream really contained garbage
}

TEST(CodecProperties, OversizedDeclaredLengthResyncsBounded) {
  // A frame declaring a huge payload must not stall the stream forever:
  // resync skips at most kMaxPayload, then recovers on later frames.
  std::vector<std::uint8_t> bytes(Header::kSize);
  const WireGuid guid = make_wire_guid(7);
  std::copy(guid.begin(), guid.end(), bytes.begin());
  bytes[16] = 0x00;  // ping
  bytes[17] = 1;
  // declared length = kMaxPayload + 1 (little endian)
  const std::uint32_t declared = kMaxPayload + 1;
  bytes[19] = static_cast<std::uint8_t>(declared & 0xff);
  bytes[20] = static_cast<std::uint8_t>((declared >> 8) & 0xff);
  bytes[21] = static_cast<std::uint8_t>((declared >> 16) & 0xff);
  bytes[22] = static_cast<std::uint8_t>((declared >> 24) & 0xff);
  bytes.resize(Header::kSize + kMaxPayload, 0xaa);  // the skipped junk
  const std::vector<std::uint8_t> good =
      serialize(make_query(make_wire_guid(8), 3, 0, "recovered"));
  bytes.insert(bytes.end(), good.begin(), good.end());

  FrameDecoder decoder;
  decoder.feed(bytes);
  const auto message = decoder.next();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->query.search, "recovered");
  EXPECT_EQ(decoder.malformed_frames(), 1u);
}

}  // namespace
}  // namespace aar::gnutella
