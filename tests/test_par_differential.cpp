// Differential determinism suite for core::TraceSimulator::run_parallel
// (docs/PARALLEL.md): for every strategy with a block-mined rule set
// (static / sliding / lazy / adaptive), every thread count in {1, 2, 3, 8},
// and both trace sources (in-memory CSV load and streamed .aartr), the
// parallel replay must reproduce the serial replay exactly —
//
//   * the SimulationResult (strategy, block size, min support, generation
//     and block counters, and the full per-block α/ρ series, compared
//     bit-for-bit as doubles),
//   * the final RuleSet snapshot, compared as serialized bytes,
//   * the aar.metrics.v1 snapshot minus timers (wall-clock is excluded by
//     contract; the store.prefetch_hits/waits split is timing-dependent and
//     scrubbed, and par.*-only keys are scrubbed when comparing against a
//     serial run that never touches them).

#include "core/trace_simulator.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstdio>
#include <memory>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "obs/registry.hpp"
#include "par/executor.hpp"
#include "store/block_source.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/database.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"
#include "trace/record.hpp"

namespace aar::core {
namespace {

constexpr std::size_t kBlockSize = 1'000;
constexpr std::uint32_t kMinSupport = 5;

trace::TraceConfig fast_config() {
  trace::TraceConfig config;
  config.seed = 7;
  config.block_size = kBlockSize;
  config.active_hosts = 80;
  config.reply_neighbors = 16;
  return config;
}

std::vector<trace::QueryReplyPair> pairs_for_blocks(std::size_t blocks) {
  trace::TraceGenerator gen(fast_config());
  return gen.generate_pairs(blocks * kBlockSize);
}

std::unique_ptr<Strategy> make_strategy(const std::string& name) {
  if (name == "static") return std::make_unique<StaticRuleset>(kMinSupport);
  if (name == "sliding") return std::make_unique<SlidingWindow>(kMinSupport);
  if (name == "lazy") {
    return std::make_unique<LazySlidingWindow>(kMinSupport, 3);
  }
  return std::make_unique<AdaptiveSlidingWindow>(kMinSupport, 5);
}

const std::vector<std::string>& strategy_names() {
  static const std::vector<std::string> names{"static", "sliding", "lazy",
                                              "adaptive"};
  return names;
}

/// Canonical byte encoding of everything deterministic in a
/// SimulationResult: all fields except the wall-clock eval_seconds series,
/// with series values printed at full round-trip precision.
std::string encode(const SimulationResult& result) {
  std::ostringstream os;
  os.precision(17);
  os << result.strategy << '|' << result.block_size << '|'
     << result.min_support << '|' << result.rulesets_generated << '|'
     << result.blocks_tested;
  for (const double v : result.coverage.values()) os << '|' << v;
  os << '#';
  for (const double v : result.success.values()) os << '|' << v;
  return os.str();
}

/// Timer-free aar.metrics.v1 snapshot of the global registry.
std::string metrics_json() {
  std::ostringstream os;
  obs::Registry::global().write_json(os, {}, /*include_timers=*/false);
  return os.str();
}

/// Drop the timing-racy prefetch-hit/wait split (the SUM is deterministic,
/// the split depends on thread scheduling) and, for serial-vs-parallel
/// comparisons, every par.* metric (a serial run never touches them, so a
/// prior parallel run in the same process leaves them behind at different
/// values).  Metric values are flat integers or one-level objects, so a
/// non-greedy scrub is exact against the single-line v1 layout.
std::string scrub(std::string json, bool drop_par) {
  static const std::regex prefetch(
      R"re("store\.prefetch_(hits|waits)":\d+,?)re");
  json = std::regex_replace(json, prefetch, "");
  if (drop_par) {
    static const std::regex par(
        R"re("par\.[a-z_.]+":(\{[^{}]*\}|\d+),?)re");
    json = std::regex_replace(json, par, "");
  }
  static const std::regex dangling(R"re(,\})re");
  return std::regex_replace(json, dangling, "}");
}

enum class SourceKind { memory, aartr };

struct RunOutput {
  std::string result_bytes;
  std::string ruleset_bytes;
  std::string metrics;
};

/// One replay from a cold strategy and a reset registry.  threads < 0 means
/// the serial path; otherwise run_parallel with that thread count.
RunOutput run_once(const std::string& strategy_name,
                   const std::vector<trace::QueryReplyPair>& pairs,
                   const std::string& aartr_path, SourceKind kind,
                   int threads) {
  obs::Registry::global().reset();
  std::unique_ptr<Strategy> strategy = make_strategy(strategy_name);
  TraceSimulator simulator(*strategy, kBlockSize);
  ParallelConfig config;
  config.threads = threads <= 0 ? 1 : static_cast<std::size_t>(threads);

  SimulationResult result;
  if (kind == SourceKind::memory) {
    result = threads < 0 ? simulator.run(pairs)
                         : simulator.run_parallel(pairs, config);
  } else {
    const store::Reader reader(aartr_path);
    store::StoreBlockSource source(reader);
    result = threads < 0 ? simulator.run(source)
                         : simulator.run_parallel(source, config);
  }

  RunOutput out;
  out.result_bytes = encode(result);
  std::ostringstream ruleset;
  strategy->current_ruleset().save(ruleset);
  out.ruleset_bytes = ruleset.str();
  out.metrics = metrics_json();
  return out;
}

class ParDifferentialTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One 9-block trace (bootstrap + 8 tested), shared by every case.  The
    // CSV round trip mimics aar_sim's --trace path for in-memory replay;
    // the .aartr file feeds the streamed store path.  File names carry the
    // pid: ctest runs each case as its own process, so concurrent cases
    // would otherwise write and read the same TempDir paths mid-write.
    const auto generated = pairs_for_blocks(9);
    const std::string tag = std::to_string(static_cast<long>(::getpid()));
    const std::string dir = ::testing::TempDir();
    const std::string csv = dir + "/par_diff_pairs." + tag + ".csv";
    trace::Database db;
    db.set_pairs(generated);
    trace::write_pairs_csv(csv, db);
    pairs_ = new std::vector<trace::QueryReplyPair>(trace::read_pairs_csv(csv));
    aartr_path_ = new std::string(dir + "/par_diff_pairs." + tag + ".aartr");
    store::write_pairs_file(*aartr_path_, *pairs_);
    std::remove(csv.c_str());
  }
  static void TearDownTestSuite() {
    if (aartr_path_ != nullptr) std::remove(aartr_path_->c_str());
    delete pairs_;
    delete aartr_path_;
    pairs_ = nullptr;
    aartr_path_ = nullptr;
  }

  static const std::vector<trace::QueryReplyPair>& pairs() { return *pairs_; }
  static const std::string& aartr_path() { return *aartr_path_; }

 private:
  static std::vector<trace::QueryReplyPair>* pairs_;
  static std::string* aartr_path_;
};

std::vector<trace::QueryReplyPair>* ParDifferentialTest::pairs_ = nullptr;
std::string* ParDifferentialTest::aartr_path_ = nullptr;

TEST_F(ParDifferentialTest, ParallelMatchesSerialInMemory) {
  for (const std::string& name : strategy_names()) {
    const RunOutput serial =
        run_once(name, pairs(), aartr_path(), SourceKind::memory, -1);
    for (const int threads : {1, 2, 3, 8}) {
      const RunOutput parallel =
          run_once(name, pairs(), aartr_path(), SourceKind::memory, threads);
      EXPECT_EQ(parallel.result_bytes, serial.result_bytes)
          << name << " threads=" << threads;
      EXPECT_EQ(parallel.ruleset_bytes, serial.ruleset_bytes)
          << name << " threads=" << threads;
      EXPECT_EQ(scrub(parallel.metrics, /*drop_par=*/true),
                scrub(serial.metrics, /*drop_par=*/true))
          << name << " threads=" << threads;
    }
  }
}

TEST_F(ParDifferentialTest, ParallelMatchesSerialStreamedStore) {
  for (const std::string& name : strategy_names()) {
    const RunOutput serial =
        run_once(name, pairs(), aartr_path(), SourceKind::aartr, -1);
    for (const int threads : {1, 2, 3, 8}) {
      const RunOutput parallel =
          run_once(name, pairs(), aartr_path(), SourceKind::aartr, threads);
      EXPECT_EQ(parallel.result_bytes, serial.result_bytes)
          << name << " threads=" << threads;
      EXPECT_EQ(parallel.ruleset_bytes, serial.ruleset_bytes)
          << name << " threads=" << threads;
      EXPECT_EQ(scrub(parallel.metrics, /*drop_par=*/true),
                scrub(serial.metrics, /*drop_par=*/true))
          << name << " threads=" << threads;
    }
  }
}

TEST_F(ParDifferentialTest, MetricsIdenticalAcrossThreadCounts) {
  // Between parallel runs the par.* metrics themselves must agree too: the
  // shard count is fixed (independent of workers), so only timers — already
  // excluded — may differ with the thread count.
  for (const std::string& name : strategy_names()) {
    const RunOutput baseline =
        run_once(name, pairs(), aartr_path(), SourceKind::memory, 1);
    for (const int threads : {2, 3, 8}) {
      const RunOutput other =
          run_once(name, pairs(), aartr_path(), SourceKind::memory, threads);
      EXPECT_EQ(scrub(other.metrics, /*drop_par=*/false),
                scrub(baseline.metrics, /*drop_par=*/false))
          << name << " threads=" << threads;
    }
  }
}

TEST_F(ParDifferentialTest, StreamedAndInMemorySourcesAgree) {
  // The two source paths replay the same pair stream, so the parallel
  // engine must produce the same result and rule set from either.
  for (const int threads : {1, 8}) {
    const RunOutput memory =
        run_once("sliding", pairs(), aartr_path(), SourceKind::memory, threads);
    const RunOutput streamed =
        run_once("sliding", pairs(), aartr_path(), SourceKind::aartr, threads);
    EXPECT_EQ(memory.result_bytes, streamed.result_bytes)
        << "threads=" << threads;
    EXPECT_EQ(memory.ruleset_bytes, streamed.ruleset_bytes)
        << "threads=" << threads;
  }
}

TEST_F(ParDifferentialTest, RepeatedParallelRunsAreIdentical) {
  const RunOutput first =
      run_once("adaptive", pairs(), aartr_path(), SourceKind::memory, 8);
  const RunOutput second =
      run_once("adaptive", pairs(), aartr_path(), SourceKind::memory, 8);
  EXPECT_EQ(first.result_bytes, second.result_bytes);
  EXPECT_EQ(first.ruleset_bytes, second.ruleset_bytes);
  EXPECT_EQ(scrub(first.metrics, false), scrub(second.metrics, false));
}

TEST_F(ParDifferentialTest, ShardAndQueueKnobsAreOutputNeutral) {
  const RunOutput baseline =
      run_once("sliding", pairs(), aartr_path(), SourceKind::memory, -1);
  for (const std::size_t shards : {1u, 4u, 32u}) {
    for (const std::size_t depth : {1u, 4u}) {
      obs::Registry::global().reset();
      std::unique_ptr<Strategy> strategy = make_strategy("sliding");
      TraceSimulator simulator(*strategy, kBlockSize);
      ParallelConfig config;
      config.threads = 2;
      config.shards = shards;
      config.queue_depth = depth;
      const SimulationResult result = simulator.run_parallel(pairs(), config);
      EXPECT_EQ(encode(result), baseline.result_bytes)
          << "shards=" << shards << " depth=" << depth;
      std::ostringstream ruleset;
      strategy->current_ruleset().save(ruleset);
      EXPECT_EQ(ruleset.str(), baseline.ruleset_bytes)
          << "shards=" << shards << " depth=" << depth;
    }
  }
}

TEST_F(ParDifferentialTest, RunParallelValidatesLikeSerial) {
  SlidingWindow strategy(kMinSupport);
  const std::vector<trace::QueryReplyPair> empty;
  TraceSimulator zero(strategy, 0);
  EXPECT_THROW((void)zero.run_parallel(pairs()), std::invalid_argument);
  TraceSimulator simulator(strategy, kBlockSize);
  EXPECT_THROW((void)simulator.run_parallel(empty), std::runtime_error);
  const auto single = pairs_for_blocks(1);
  EXPECT_THROW((void)simulator.run_parallel(single), std::runtime_error);
}

}  // namespace
}  // namespace aar::core
