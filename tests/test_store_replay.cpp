// Integration: TraceSimulator replay through a streaming aartr BlockSource
// must produce exactly the per-block (coverage, success) series that
// in-memory replay produces, for every maintenance strategy — the
// correctness contract that lets the out-of-core path substitute for the
// in-memory one (ISSUE 1 acceptance criterion).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <random>

#include "test_tmp.hpp"
#include "core/strategy.hpp"
#include "core/trace_simulator.hpp"
#include "store/block_source.hpp"
#include "store/reader.hpp"
#include "store/writer.hpp"
#include "trace/block_source.hpp"
#include "trace/generator.hpp"

namespace aar::core {
namespace {

constexpr std::size_t kBlockSize = 1'000;
constexpr std::size_t kBlocks = 25;  // bootstrap + 24 tested

std::vector<trace::QueryReplyPair> replay_trace() {
  trace::TraceConfig config;
  config.seed = 99;
  config.block_size = kBlockSize;
  trace::TraceGenerator generator(config);
  return generator.generate_pairs(kBlocks * kBlockSize + 250);  // ragged tail
}

std::unique_ptr<Strategy> make(const std::string& name) {
  constexpr std::uint32_t kMinSupport = 5;
  if (name == "static") return std::make_unique<StaticRuleset>(kMinSupport);
  if (name == "sliding") return std::make_unique<SlidingWindow>(kMinSupport);
  if (name == "lazy") return std::make_unique<LazySlidingWindow>(kMinSupport, 5);
  return std::make_unique<AdaptiveSlidingWindow>(kMinSupport, 10);
}

void expect_identical(const SimulationResult& a, const SimulationResult& b) {
  EXPECT_EQ(a.blocks_tested, b.blocks_tested);
  EXPECT_EQ(a.rulesets_generated, b.rulesets_generated);
  ASSERT_EQ(a.coverage.size(), b.coverage.size());
  for (std::size_t i = 0; i < a.coverage.size(); ++i) {
    EXPECT_EQ(a.coverage[i], b.coverage[i]) << "coverage diverges at block " << i;
    EXPECT_EQ(a.success[i], b.success[i]) << "success diverges at block " << i;
  }
}

class StoreReplay : public ::testing::TestWithParam<const char*> {
 protected:
  static void SetUpTestSuite() {
    pairs_ = new std::vector<trace::QueryReplyPair>(replay_trace());
    // Chunk size deliberately misaligned with the block size so every block
    // spans chunk boundaries.
    store::write_pairs_file(file_path(), *pairs_, 768);
  }
  static void TearDownTestSuite() {
    delete pairs_;
    pairs_ = nullptr;
    std::remove(file_path().c_str());
  }
  static std::string file_path() {
    // Shared process-unique prefix (tests/test_tmp.hpp): fixed names are
    // flaky under ctest -j.
    return aar::testing::unique_path("replay.aartr");
  }
  static std::vector<trace::QueryReplyPair>* pairs_;
};

std::vector<trace::QueryReplyPair>* StoreReplay::pairs_ = nullptr;

TEST_P(StoreReplay, DiskReplayMatchesInMemory) {
  auto in_memory_strategy = make(GetParam());
  const SimulationResult in_memory =
      run_trace_simulation(*in_memory_strategy, *pairs_, kBlockSize);

  const store::Reader reader(file_path());
  store::StoreBlockSource source(reader);
  auto streamed_strategy = make(GetParam());
  const SimulationResult streamed =
      run_trace_simulation(*streamed_strategy, source, kBlockSize);

  EXPECT_EQ(in_memory.blocks_tested, kBlocks - 1);
  expect_identical(in_memory, streamed);
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, StoreReplay,
                         ::testing::Values("static", "sliding", "lazy",
                                           "adaptive"));

TEST(SpanBlockSource, MatchesDirectSpanReplay) {
  // The span overload is itself implemented over SpanBlockSource; pin the
  // pull-based contract explicitly: whole blocks in order, then empty.
  const auto pairs = replay_trace();
  trace::SpanBlockSource source(pairs);
  std::size_t offset = 0;
  while (true) {
    const auto block = source.next_block(kBlockSize);
    if (block.empty()) break;
    ASSERT_EQ(block.size(), kBlockSize);
    EXPECT_EQ(block.data(), pairs.data() + offset);  // zero-copy view
    offset += kBlockSize;
  }
  EXPECT_EQ(offset, kBlocks * kBlockSize);  // ragged 250-pair tail dropped
}

}  // namespace
}  // namespace aar::core
