#include "store/reader.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <random>

#include "test_tmp.hpp"
#include "store/block_source.hpp"
#include "store/format.hpp"
#include "store/writer.hpp"
#include "trace/generator.hpp"
#include "trace/io.hpp"

namespace aar::store {
namespace {

using trace::QueryRecord;
using trace::QueryReplyPair;
using trace::ReplyRecord;

class StoreTest : public ::testing::Test {
 protected:
  // Shared process-unique prefix (tests/test_tmp.hpp): fixed names are
  // flaky under ctest -j.
  std::string path(const char* name) {
    return aar::testing::unique_path(name);
  }
  void TearDown() override {
    for (const char* name : {"aar_s.aartr", "aar_s2.aartr", "aar_s.csv"}) {
      std::remove(path(name).c_str());
    }
  }
};

std::vector<QueryReplyPair> sample_pairs(std::size_t n, std::uint64_t seed = 7) {
  trace::TraceConfig config;
  config.seed = seed;
  config.block_size = 500;
  trace::TraceGenerator generator(config);
  return generator.generate_pairs(n);
}

TEST(StoreFormat, Crc32MatchesKnownVectors) {
  // IEEE CRC32 of "123456789" is the classic check value.
  EXPECT_EQ(crc32("123456789", 9), 0xcbf43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Incremental chaining equals one-shot.
  const std::uint32_t part = crc32("12345", 5);
  EXPECT_EQ(crc32("6789", 4, part), 0xcbf43926u);
}

TEST(StoreFormat, ZigzagRoundTrips) {
  for (const std::int64_t v :
       {std::int64_t{0}, std::int64_t{1}, std::int64_t{-1}, std::int64_t{1234},
        std::int64_t{-1234}, std::numeric_limits<std::int64_t>::max(),
        std::numeric_limits<std::int64_t>::min()}) {
    EXPECT_EQ(unzigzag(zigzag(v)), v);
  }
  EXPECT_EQ(zigzag(0), 0u);
  EXPECT_EQ(zigzag(-1), 1u);
  EXPECT_EQ(zigzag(1), 2u);
}

TEST(StoreFormat, VarintRoundTrips) {
  std::string buffer;
  const std::vector<std::uint64_t> values{
      0, 1, 127, 128, 300, 16'383, 16'384,
      std::numeric_limits<std::uint64_t>::max()};
  for (const std::uint64_t v : values) put_varint(buffer, v);
  ByteReader cursor(reinterpret_cast<const unsigned char*>(buffer.data()),
                    buffer.size());
  for (const std::uint64_t v : values) EXPECT_EQ(cursor.varint(), v);
  EXPECT_TRUE(cursor.done());
}

TEST(StoreFormat, TruncatedVarintThrows) {
  std::string buffer;
  buffer.push_back(static_cast<char>(0x80));  // continuation with no tail
  ByteReader cursor(reinterpret_cast<const unsigned char*>(buffer.data()),
                    buffer.size());
  EXPECT_THROW((void)cursor.varint(), std::runtime_error);
}

class PairRoundTrip : public StoreTest,
                      public ::testing::WithParamInterface<std::size_t> {};

TEST_P(PairRoundTrip, PairsSurviveByteIdentically) {
  const auto pairs = sample_pairs(GetParam());
  // Small chunks so multi-chunk paths (and the exact-boundary case when the
  // count is a multiple of 64) are exercised.
  write_pairs_file(path("aar_s.aartr"), pairs, 64);
  const Reader reader(path("aar_s.aartr"));
  EXPECT_EQ(reader.kind(), StreamKind::pairs);
  EXPECT_EQ(reader.num_records(), pairs.size());
  const auto loaded = reader.read_all_pairs();
  ASSERT_EQ(loaded.size(), pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(loaded[i], pairs[i]);  // double time bits included: lossless
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PairRoundTrip,
                         ::testing::Values(0, 1, 5, 63, 64, 65, 1'000));

TEST_F(StoreTest, ChunkSeekMatchesSequentialSlices) {
  const auto pairs = sample_pairs(500);
  write_pairs_file(path("aar_s.aartr"), pairs, 128);
  const Reader reader(path("aar_s.aartr"));
  ASSERT_EQ(reader.num_chunks(), 4u);  // 128+128+128+116
  EXPECT_EQ(reader.chunk_records(3), 116u);
  // Random-access the third chunk without touching the first two.
  const auto chunk2 = reader.read_pairs_chunk(2);
  ASSERT_EQ(chunk2.size(), 128u);
  for (std::size_t i = 0; i < chunk2.size(); ++i) {
    EXPECT_EQ(chunk2[i], pairs[256 + i]);
  }
  EXPECT_THROW((void)reader.read_pairs_chunk(4), std::runtime_error);
}

TEST_F(StoreTest, QueriesAndRepliesRoundTripAndMaterialize) {
  trace::TraceConfig config;
  config.seed = 11;
  config.block_size = 400;
  trace::TraceGenerator generator(config);
  trace::Database db;
  db.import(generator, 800);

  write_queries_file(path("aar_s.aartr"), db.queries(), 100);
  {
    const Reader reader(path("aar_s.aartr"));
    EXPECT_EQ(reader.kind(), StreamKind::queries);
    trace::Database loaded;
    reader.materialize(loaded);
    ASSERT_EQ(loaded.queries().size(), db.queries().size());
    for (std::size_t i = 0; i < db.queries().size(); ++i) {
      EXPECT_EQ(loaded.queries()[i].time, db.queries()[i].time);
      EXPECT_EQ(loaded.queries()[i].guid, db.queries()[i].guid);
      EXPECT_EQ(loaded.queries()[i].source_host, db.queries()[i].source_host);
      EXPECT_EQ(loaded.queries()[i].query, db.queries()[i].query);
    }
    // Typed accessors enforce the stream kind.
    EXPECT_THROW((void)reader.read_pairs_chunk(0), std::runtime_error);
    EXPECT_THROW((void)reader.read_replies_chunk(0), std::runtime_error);
  }

  write_replies_file(path("aar_s2.aartr"), db.replies(), 100);
  const Reader reader(path("aar_s2.aartr"));
  EXPECT_EQ(reader.kind(), StreamKind::replies);
  trace::Database loaded;
  reader.materialize(loaded);
  ASSERT_EQ(loaded.replies().size(), db.replies().size());
  for (std::size_t i = 0; i < db.replies().size(); ++i) {
    EXPECT_EQ(loaded.replies()[i].time, db.replies()[i].time);
    EXPECT_EQ(loaded.replies()[i].guid, db.replies()[i].guid);
    EXPECT_EQ(loaded.replies()[i].replying_neighbor,
              db.replies()[i].replying_neighbor);
    EXPECT_EQ(loaded.replies()[i].serving_host, db.replies()[i].serving_host);
    EXPECT_EQ(loaded.replies()[i].file, db.replies()[i].file);
  }
}

TEST_F(StoreTest, CsvToAartrToDatabaseIsByteIdentical) {
  // The acceptance-criteria pipeline: CSV -> aartr -> Database equals the
  // original pair table exactly.
  trace::TraceConfig config;
  config.seed = 13;
  config.block_size = 500;
  trace::TraceGenerator generator(config);
  trace::Database db;
  db.import(generator, 1'500);
  db.join();

  trace::write_pairs_csv(path("aar_s.csv"), db);
  const auto from_csv = trace::read_pairs_csv(path("aar_s.csv"));
  write_pairs_file(path("aar_s.aartr"), from_csv, 256);

  trace::Database materialized;
  Reader(path("aar_s.aartr")).materialize(materialized);
  ASSERT_EQ(materialized.pairs().size(), db.pairs().size());
  for (std::size_t i = 0; i < db.pairs().size(); ++i) {
    EXPECT_EQ(materialized.pairs()[i], db.pairs()[i]);
  }
  // set_pairs marks the table joined, so the block API works directly.
  EXPECT_EQ(materialized.num_blocks(500), db.pairs().size() / 500);
}

TEST_F(StoreTest, MissingFileThrows) {
  EXPECT_THROW(Reader("/nonexistent/trace.aartr"), std::runtime_error);
}

TEST_F(StoreTest, NonAartrFileThrows) {
  std::ofstream out(path("aar_s.aartr"), std::ios::binary);
  out << "time,guid,source_host,replying_neighbor,query\n1,2,3,4,5\n";
  out.close();
  EXPECT_THROW(Reader(path("aar_s.aartr")), std::runtime_error);
}

TEST_F(StoreTest, TruncatedFileThrows) {
  const auto pairs = sample_pairs(300);
  write_pairs_file(path("aar_s.aartr"), pairs, 128);
  const auto full_size = std::filesystem::file_size(path("aar_s.aartr"));
  // Chop anywhere — trailer gone, footer unreachable — and opening fails.
  for (const std::uintmax_t keep :
       {full_size - 1, full_size / 2, std::uintmax_t{40}, std::uintmax_t{10}}) {
    std::filesystem::resize_file(path("aar_s.aartr"), keep);
    EXPECT_THROW(Reader(path("aar_s.aartr")), std::runtime_error)
        << "file truncated to " << keep << " bytes was accepted";
  }
}

TEST_F(StoreTest, CorruptChunkPayloadThrowsOnDecode) {
  const auto pairs = sample_pairs(300);
  write_pairs_file(path("aar_s.aartr"), pairs, 128);
  // Flip one byte inside the second chunk's payload.  Header, footer and
  // trailer stay intact, so open succeeds but the chunk decode must fail.
  Reader probe(path("aar_s.aartr"));
  ASSERT_GE(probe.num_chunks(), 2u);
  std::fstream file(path("aar_s.aartr"),
                    std::ios::binary | std::ios::in | std::ios::out);
  const auto corrupt_at = static_cast<std::streamoff>(kHeaderSize) + 600;
  file.seekg(corrupt_at);
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(corrupt_at);
  file.write(&byte, 1);
  file.close();

  const Reader reader(path("aar_s.aartr"));
  EXPECT_THROW((void)reader.read_all_pairs(), std::runtime_error);
}

TEST_F(StoreTest, CorruptHeaderCrcThrows) {
  write_pairs_file(path("aar_s.aartr"), sample_pairs(50), 64);
  std::fstream file(path("aar_s.aartr"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(16);  // record-count field: CRC-covered
  const char byte = 0x5a;
  file.write(&byte, 1);
  file.close();
  EXPECT_THROW(Reader(path("aar_s.aartr")), std::runtime_error);
}

TEST_F(StoreTest, WriterRejectsKindMismatch) {
  Writer writer(path("aar_s.aartr"), StreamKind::pairs);
  EXPECT_THROW(writer.add(QueryRecord{}), std::logic_error);
  EXPECT_THROW(writer.add(ReplyRecord{}), std::logic_error);
  writer.add(QueryReplyPair{});
  writer.close();
}

TEST_F(StoreTest, SmallerThanCsv) {
  trace::TraceConfig config;
  config.seed = 3;
  config.block_size = 1'000;
  trace::TraceGenerator generator(config);
  trace::Database db;
  db.import(generator, 20'000);
  db.join();
  trace::write_pairs_csv(path("aar_s.csv"), db);
  write_pairs_file(path("aar_s.aartr"), db.pairs());
  const auto csv_size = std::filesystem::file_size(path("aar_s.csv"));
  const auto aartr_size = std::filesystem::file_size(path("aar_s.aartr"));
  EXPECT_LE(aartr_size * 2, csv_size)
      << "aartr " << aartr_size << " B vs CSV " << csv_size << " B";
}

TEST_F(StoreTest, BlockSourceYieldsWholeBlocksThenEmpty) {
  const auto pairs = sample_pairs(1'000);
  write_pairs_file(path("aar_s.aartr"), pairs, 128);
  const Reader reader(path("aar_s.aartr"));
  StoreBlockSource source(reader);
  // 1000 pairs / 300-pair blocks = 3 whole blocks, 100-pair tail dropped.
  std::size_t offset = 0;
  for (int b = 0; b < 3; ++b) {
    const auto block = source.next_block(300);
    ASSERT_EQ(block.size(), 300u) << "block " << b;
    for (std::size_t i = 0; i < block.size(); ++i) {
      EXPECT_EQ(block[i], pairs[offset + i]);
    }
    offset += 300;
  }
  EXPECT_TRUE(source.next_block(300).empty());
  EXPECT_TRUE(source.next_block(300).empty());  // stays exhausted
}

TEST_F(StoreTest, BlockSourcePropagatesDecodeErrors) {
  write_pairs_file(path("aar_s.aartr"), sample_pairs(400), 128);
  std::fstream file(path("aar_s.aartr"),
                    std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(static_cast<std::streamoff>(kHeaderSize) + 20);
  const char byte = 0x13;
  file.write(&byte, 1);
  file.close();
  const Reader reader(path("aar_s.aartr"));
  StoreBlockSource source(reader);
  EXPECT_THROW((void)source.next_block(200), std::runtime_error);
}

TEST_F(StoreTest, BlockSourceRejectsNonPairStreams) {
  trace::Database db;
  db.add_query(QueryRecord{.time = 1.0, .guid = 1, .source_host = 2, .query = 3});
  write_queries_file(path("aar_s.aartr"), db.queries());
  const Reader reader(path("aar_s.aartr"));
  EXPECT_THROW(StoreBlockSource{reader}, std::runtime_error);
}

}  // namespace
}  // namespace aar::store
