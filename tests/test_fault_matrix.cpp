// Fault-matrix sweep: {drop 0, 0.05, 0.2} x {crashed 0%, 10%}.  Each cell
// is one named ctest case that runs the same scenario over several seeds
// and checks that injected faults never *improve* search success beyond a
// seed-averaged tolerance, and that degradation grows monotonically along
// the drop axis.  Flooding policy, so the measurement isolates the fault
// layer from rule-learning dynamics.

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "overlay/fault_experiment.hpp"

namespace aar::overlay {
namespace {

constexpr std::uint64_t kSeeds[] = {101, 202, 303};
constexpr double kTolerance = 0.03;  // seed-averaged noise allowance

struct Cell {
  double drop;
  std::size_t crash_den;  ///< 0 = no crashes, N = every Nth peer crashed
};

fault::Scenario cell_scenario(const Cell& cell) {
  fault::Scenario scenario;
  scenario.nodes = 150;
  scenario.attach = 3;
  scenario.warmup = 80;
  scenario.queries = 200;
  scenario.epochs = 2;
  scenario.policy = "flooding";
  scenario.ttl = 6;
  scenario.timeout = 48;
  scenario.retries = 2;
  scenario.plan.drop = cell.drop;
  if (cell.crash_den != 0) {
    for (std::size_t n = 0; n < scenario.nodes; n += cell.crash_den) {
      scenario.plan.peers.push_back(
          {static_cast<fault::NodeId>(n), fault::PeerState::crashed});
    }
  }
  return scenario;
}

double seed_averaged_success(const Cell& cell) {
  double total = 0.0;
  for (const std::uint64_t seed : kSeeds) {
    const FaultRunResult run = run_fault_scenario(cell_scenario(cell), seed);
    total += static_cast<double>(run.hits) / static_cast<double>(run.searches);
  }
  return total / static_cast<double>(std::size(kSeeds));
}

/// The zero-fault baseline, computed once and shared across cells.
double baseline_success() {
  static const double baseline = seed_averaged_success({0.0, 0});
  return baseline;
}

class FaultMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(FaultMatrix, FaultsNeverBeatTheLosslessBaseline) {
  const Cell cell = GetParam();
  const double success = seed_averaged_success(cell);
  EXPECT_LE(success, baseline_success() + kTolerance)
      << "drop=" << cell.drop << " crashed=1/" << cell.crash_den
      << " outperformed the lossless overlay";
  // Sanity floor: the retry ladder must keep the overlay useful even in the
  // harshest cell (20% loss, 10% crashed).
  EXPECT_GT(success, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FaultMatrix,
    ::testing::Values(Cell{0.0, 0}, Cell{0.0, 10}, Cell{0.05, 0},
                      Cell{0.05, 10}, Cell{0.2, 0}, Cell{0.2, 10}),
    [](const ::testing::TestParamInfo<Cell>& info) {
      const int drop_pct = static_cast<int>(info.param.drop * 100.0 + 0.5);
      const int crash_pct =
          info.param.crash_den == 0
              ? 0
              : static_cast<int>(100.0 / static_cast<double>(
                                             info.param.crash_den) +
                                 0.5);
      return "drop" + std::to_string(drop_pct) + "_crash" +
             std::to_string(crash_pct);
    });

TEST(FaultMatrixShape, DegradationMonotonicAlongDropAxis) {
  // Seed-averaged success must not rise as the drop rate climbs (within
  // tolerance): 0 >= 0.05 >= 0.2 along both crash rows.
  for (const std::size_t crash_den : {std::size_t{0}, std::size_t{10}}) {
    const double s0 = seed_averaged_success({0.0, crash_den});
    const double s5 = seed_averaged_success({0.05, crash_den});
    const double s20 = seed_averaged_success({0.2, crash_den});
    EXPECT_LE(s5, s0 + kTolerance) << "crash 1/" << crash_den;
    EXPECT_LE(s20, s5 + kTolerance) << "crash 1/" << crash_den;
    // And the far corner must show *real* degradation, not noise — the
    // injector is demonstrably doing something.
    EXPECT_LT(s20, s0) << "crash 1/" << crash_den;
  }
}

TEST(FaultMatrixShape, CrashRowDegradesBelowHealthyRow) {
  const double healthy = seed_averaged_success({0.05, 0});
  const double crashed = seed_averaged_success({0.05, 10});
  EXPECT_LE(crashed, healthy + kTolerance);
}

}  // namespace
}  // namespace aar::overlay
