#include "dht/chord.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace aar::dht {
namespace {

ChordConfig small_ring(std::size_t nodes = 128, std::uint64_t seed = 3) {
  return ChordConfig{.nodes = nodes, .successor_list = 8, .seed = seed};
}

TEST(Chord, ConstructionInvariants) {
  ChordRing ring(small_ring());
  EXPECT_EQ(ring.size(), 128u);
  EXPECT_EQ(ring.alive_count(), 128u);
  std::set<Key> ids;
  for (std::size_t n = 0; n < ring.size(); ++n) ids.insert(ring.id_of(n));
  EXPECT_EQ(ids.size(), ring.size());  // distinct ring positions
}

TEST(Chord, ResponsibleMatchesBruteForce) {
  ChordRing ring(small_ring());
  util::Rng rng(1);
  for (int trial = 0; trial < 500; ++trial) {
    const auto key = static_cast<Key>(rng());
    const auto owner = ring.responsible(key);
    ASSERT_TRUE(owner.has_value());
    // Brute force: live node minimizing clockwise distance from key.
    std::size_t best = SIZE_MAX;
    std::uint64_t best_distance = ~0ull;
    for (std::size_t n = 0; n < ring.size(); ++n) {
      const std::uint64_t d =
          (static_cast<std::uint64_t>(ring.id_of(n)) - key) & 0xffffffffull;
      if (d < best_distance) {
        best_distance = d;
        best = n;
      }
    }
    EXPECT_EQ(*owner, best);
  }
}

TEST(Chord, LookupFindsOwnerFromEveryOrigin) {
  ChordRing ring(small_ring());
  util::Rng rng(2);
  for (int trial = 0; trial < 300; ++trial) {
    const auto key = static_cast<Key>(rng());
    const std::size_t origin = rng.index(ring.size());
    const LookupResult result = ring.lookup(origin, key);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.owner, *ring.responsible(key));
  }
}

TEST(Chord, LookupIsLogarithmic) {
  ChordRing ring(small_ring(1'024, 5));
  util::Rng rng(3);
  double total_hops = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    const LookupResult result =
        ring.lookup(rng.index(ring.size()), static_cast<Key>(rng()));
    ASSERT_TRUE(result.ok);
    total_hops += result.hops;
  }
  const double avg = total_hops / kTrials;
  // Theory: ~0.5 * log2(N) = 5; allow generous slack.
  EXPECT_LT(avg, 10.0);
  EXPECT_GT(avg, 2.0);
}

TEST(Chord, OriginOwningKeyIsZeroHops) {
  ChordRing ring(small_ring());
  // A node's own id is a key it owns.
  const std::size_t node = 7;
  const LookupResult result = ring.lookup(node, ring.id_of(node));
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.hops, 0u);
  EXPECT_EQ(result.owner, node);
}

TEST(Chord, HashKeyIsDeterministicAndSpread) {
  EXPECT_EQ(ChordRing::hash_key(42), ChordRing::hash_key(42));
  std::set<Key> keys;
  for (std::uint64_t v = 0; v < 1'000; ++v) keys.insert(ChordRing::hash_key(v));
  EXPECT_GT(keys.size(), 990u);
}

TEST(Chord, ModerateFailuresInflateHopsBeforeStabilization) {
  // With r = 8 successor lists, 40% simultaneous failure rarely *breaks*
  // lookups (that is Chord's successor-list design working) — but routes
  // lengthen, because dead fingers force detours through shorter jumps.
  ChordRing healthy(small_ring(512, 7));
  ChordRing ring(small_ring(512, 7));
  util::Rng rng(4);
  EXPECT_EQ(ring.fail_random(0.4, rng), static_cast<std::size_t>(0.4 * 512));

  util::Rng workload(40);
  double healthy_hops = 0;
  double degraded_hops = 0;
  std::size_t attempts = 0;
  for (int trial = 0; trial < 800; ++trial) {
    const std::size_t origin = workload.index(ring.size());
    const auto key = static_cast<Key>(workload());
    if (!ring.is_alive(origin)) continue;
    const LookupResult degraded = ring.lookup(origin, key);
    const LookupResult baseline = healthy.lookup(origin, key);
    if (!degraded.ok || !baseline.ok) continue;  // rare residual failures
    ++attempts;
    healthy_hops += baseline.hops;
    degraded_hops += degraded.hops;
  }
  ASSERT_GT(attempts, 100u);
  EXPECT_GT(degraded_hops, healthy_hops);
  // Stabilization repairs the inflation.
  ring.stabilize();
  double repaired_hops = 0;
  std::size_t repaired_attempts = 0;
  util::Rng workload2(40);
  for (int trial = 0; trial < 800; ++trial) {
    const std::size_t origin = workload2.index(ring.size());
    const auto key = static_cast<Key>(workload2());
    if (!ring.is_alive(origin)) continue;
    const LookupResult result = ring.lookup(origin, key);
    ASSERT_TRUE(result.ok);
    repaired_hops += result.hops;
    ++repaired_attempts;
  }
  EXPECT_LT(repaired_hops / static_cast<double>(repaired_attempts),
            degraded_hops / static_cast<double>(attempts) + 0.5);
}

TEST(Chord, StabilizeRestoresCorrectness) {
  ChordRing ring(small_ring(512, 9));
  util::Rng rng(5);
  ring.fail_random(0.4, rng);
  ring.stabilize();
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t origin = rng.index(ring.size());
    if (!ring.is_alive(origin)) continue;
    const auto key = static_cast<Key>(rng());
    const LookupResult result = ring.lookup(origin, key);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.owner, *ring.responsible(key));
  }
}

TEST(Chord, MassiveSimultaneousFailureBreaksRouting) {
  // The paper: "if a certain set of the nodes fail simultaneously, the
  // network can become disconnected."  With deaths far beyond the successor
  // list length, un-stabilized lookups fail in bulk.
  ChordRing ring(small_ring(512, 11));
  util::Rng rng(6);
  ring.fail_random(0.75, rng);
  std::size_t failures = 0;
  std::size_t attempts = 0;
  for (int trial = 0; trial < 800; ++trial) {
    const std::size_t origin = rng.index(ring.size());
    if (!ring.is_alive(origin)) continue;
    ++attempts;
    if (!ring.lookup(origin, static_cast<Key>(rng())).ok) ++failures;
  }
  ASSERT_GT(attempts, 50u);
  EXPECT_GT(static_cast<double>(failures) / static_cast<double>(attempts), 0.2);
}

TEST(Chord, JoinIsInvisibleUntilStabilize) {
  ChordRing ring(small_ring(64, 13));
  util::Rng rng(7);
  const std::size_t newcomer = ring.join(rng);
  EXPECT_EQ(ring.size(), 65u);
  EXPECT_TRUE(ring.is_alive(newcomer));
  // Ground truth immediately assigns the newcomer its arc...
  const Key own_key = ring.id_of(newcomer);
  EXPECT_EQ(*ring.responsible(own_key), newcomer);
  // ...but routing from an old node misses it (stale tables) at least for
  // some keys in the newcomer's arc; after stabilize everything lines up.
  std::size_t wrong_before = 0;
  for (int trial = 0; trial < 200; ++trial) {
    std::size_t origin = rng.index(64);  // an old node
    const LookupResult result = ring.lookup(origin, own_key);
    if (!result.ok) ++wrong_before;
  }
  EXPECT_GT(wrong_before, 0u);
  ring.stabilize();
  for (int trial = 0; trial < 50; ++trial) {
    const LookupResult result = ring.lookup(rng.index(64), own_key);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.owner, newcomer);
  }
}

TEST(Chord, NewcomerCanRouteImmediately) {
  ChordRing ring(small_ring(64, 17));
  util::Rng rng(8);
  const std::size_t newcomer = ring.join(rng);
  for (int trial = 0; trial < 100; ++trial) {
    const auto key = static_cast<Key>(rng());
    const LookupResult result = ring.lookup(newcomer, key);
    ASSERT_TRUE(result.ok) << "newcomer lookups use its freshly built tables";
  }
}

class ChordSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChordSizeSweep, HopsGrowLogarithmically) {
  ChordRing ring(small_ring(GetParam(), 21));
  util::Rng rng(9);
  double total = 0;
  constexpr int kTrials = 200;
  for (int trial = 0; trial < kTrials; ++trial) {
    const LookupResult result =
        ring.lookup(rng.index(ring.size()), static_cast<Key>(rng()));
    ASSERT_TRUE(result.ok);
    total += result.hops;
  }
  EXPECT_LT(total / kTrials, 1.5 * std::log2(static_cast<double>(GetParam())));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ChordSizeSweep,
                         ::testing::Values(64, 256, 1'024, 4'096));

}  // namespace
}  // namespace aar::dht
