#include "core/forwarder.hpp"

#include <gtest/gtest.h>

#include <set>

namespace aar::core {
namespace {

RuleSet sample_rules() {
  std::vector<trace::QueryReplyPair> pairs;
  auto add = [&pairs](HostId source, HostId replier, int count) {
    for (int i = 0; i < count; ++i) {
      pairs.push_back({.time = 0.0,
                       .guid = static_cast<trace::Guid>(pairs.size() + 1),
                       .source_host = source,
                       .replying_neighbor = replier});
    }
  };
  add(1, 100, 5);
  add(1, 101, 3);
  add(1, 102, 1);
  add(2, 200, 4);
  return RuleSet::build(pairs, 1);
}

TEST(Forwarder, UnknownAntecedentFloods) {
  Forwarder forwarder;
  util::Rng rng(1);
  const ForwardDecision decision = forwarder.decide(sample_rules(), 99, rng);
  EXPECT_TRUE(decision.flood);
  EXPECT_FALSE(decision.rule_routed());
  EXPECT_TRUE(decision.targets.empty());
}

TEST(Forwarder, TopKPicksHighestSupport) {
  Forwarder forwarder({.k = 2, .mode = SelectionMode::kTopK});
  util::Rng rng(2);
  const ForwardDecision decision = forwarder.decide(sample_rules(), 1, rng);
  EXPECT_TRUE(decision.rule_routed());
  EXPECT_EQ(decision.targets, (std::vector<HostId>{100, 101}));
}

TEST(Forwarder, KOneIsSingleBestNeighbor) {
  Forwarder forwarder({.k = 1});
  util::Rng rng(3);
  const ForwardDecision decision = forwarder.decide(sample_rules(), 1, rng);
  EXPECT_EQ(decision.targets, (std::vector<HostId>{100}));
}

TEST(Forwarder, KLargerThanRulesReturnsAll) {
  Forwarder forwarder({.k = 10});
  util::Rng rng(4);
  const ForwardDecision decision = forwarder.decide(sample_rules(), 2, rng);
  EXPECT_EQ(decision.targets, (std::vector<HostId>{200}));
  EXPECT_FALSE(decision.flood);
}

TEST(Forwarder, RandomKStaysWithinConsequents) {
  Forwarder forwarder({.k = 2, .mode = SelectionMode::kRandomK});
  util::Rng rng(5);
  const RuleSet rules = sample_rules();
  std::set<HostId> seen;
  for (int i = 0; i < 100; ++i) {
    const ForwardDecision decision = forwarder.decide(rules, 1, rng);
    EXPECT_EQ(decision.targets.size(), 2u);
    for (HostId h : decision.targets) {
      EXPECT_TRUE(h == 100 || h == 101 || h == 102);
      seen.insert(h);
    }
  }
  EXPECT_EQ(seen.size(), 3u);  // randomization explores every consequent
}

TEST(Forwarder, EmptyRuleSetAlwaysFloods) {
  Forwarder forwarder;
  util::Rng rng(6);
  const RuleSet empty;
  EXPECT_TRUE(forwarder.decide(empty, 1, rng).flood);
}

TEST(Forwarder, ConfigIsAccessible) {
  Forwarder forwarder({.k = 3, .mode = SelectionMode::kRandomK});
  EXPECT_EQ(forwarder.config().k, 3u);
  EXPECT_EQ(forwarder.config().mode, SelectionMode::kRandomK);
}

}  // namespace
}  // namespace aar::core
