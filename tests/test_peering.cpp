// Unit and property tests for the Gnutella 0.4 peering handshake
// (src/node/peering.hpp): BannerScanner classification on both sides of
// the exchange — happy paths, banners split across arbitrary chunk
// boundaries, raw-client fallback, oversized / garbage / wrong-version
// refusal — plus a seeded 500-trial slicing-invariance property mirroring
// the FrameDecoder suite: the classification and the leftover byte stream
// must be identical no matter how the bytes are chopped.  Also pins
// parse_host_port, the strict `--peer` / admin-connect endpoint parser.

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "node/peering.hpp"
#include "util/rng.hpp"

namespace aar::node {
namespace {

std::vector<std::uint8_t> bytes_of(std::string_view text) {
  return {text.begin(), text.end()};
}

/// Feed `stream` cut at `splits` (ascending offsets) and return the scanner.
BannerScanner scan_sliced(BannerScanner::Mode mode,
                          std::span<const std::uint8_t> stream,
                          const std::vector<std::size_t>& splits) {
  BannerScanner scanner(mode);
  std::size_t start = 0;
  for (const std::size_t split : splits) {
    (void)scanner.feed(stream.subspan(start, split - start));
    start = split;
  }
  (void)scanner.feed(stream.subspan(start));
  return scanner;
}

std::vector<std::uint8_t> leftover_of(const BannerScanner& scanner) {
  return {scanner.leftover().begin(), scanner.leftover().end()};
}

// --- listener happy path / fallback / refusal -----------------------------

TEST(Peering, ListenerAcceptsExactConnectBanner) {
  BannerScanner scanner;
  const auto banner = bytes_of(kConnectBanner);
  EXPECT_EQ(scanner.feed(banner), HandshakeStatus::accepted);
  EXPECT_TRUE(scanner.leftover().empty());
}

TEST(Peering, ListenerAcceptsBannerWithTrailingFrameBytes) {
  BannerScanner scanner;
  auto stream = bytes_of(kConnectBanner);
  const std::vector<std::uint8_t> frame = {0xde, 0xad, 0xbe, 0xef};
  stream.insert(stream.end(), frame.begin(), frame.end());
  EXPECT_EQ(scanner.feed(stream), HandshakeStatus::accepted);
  EXPECT_EQ(leftover_of(scanner), frame);
}

TEST(Peering, ListenerStaysPendingOnBannerPrefix) {
  BannerScanner scanner;
  const auto banner = bytes_of(kConnectBanner);
  for (std::size_t cut = 1; cut < banner.size(); ++cut) {
    BannerScanner fresh;
    EXPECT_EQ(fresh.feed({banner.data(), cut}), HandshakeStatus::pending)
        << "prefix length " << cut;
  }
  (void)scanner;
}

TEST(Peering, ListenerFallsBackToRawOnFrameBytes) {
  // A 0.4 frame header starts with a binary GUID — it diverges from
  // "GNUTELLA " at byte 0 and the whole stream must come back untouched.
  BannerScanner scanner;
  const std::vector<std::uint8_t> frame = {0x00, 0x11, 0x22, 'G', 'N'};
  EXPECT_EQ(scanner.feed(frame), HandshakeStatus::raw);
  EXPECT_EQ(leftover_of(scanner), frame);
}

TEST(Peering, ListenerFallsBackToRawOnDivergenceInsideMarker) {
  // "GNUTELLX..." shares 8 bytes with the marker before diverging; raw
  // fallback must still hand back every byte seen.
  BannerScanner scanner;
  const auto stream = bytes_of("GNUTELLX rest of a frame");
  EXPECT_EQ(scanner.feed(stream), HandshakeStatus::raw);
  EXPECT_EQ(leftover_of(scanner), stream);
}

TEST(Peering, ListenerRefusesWrongProtocolVersion) {
  BannerScanner scanner;
  EXPECT_EQ(scanner.feed(bytes_of("GNUTELLA CONNECT/0.6\n\n")),
            HandshakeStatus::refused);
  EXPECT_NE(scanner.reason().find("GNUTELLA CONNECT/0.6"), std::string::npos);
  EXPECT_TRUE(scanner.leftover().empty());
}

TEST(Peering, ListenerRefusesUnknownDialect) {
  BannerScanner scanner;
  EXPECT_EQ(scanner.feed(bytes_of("GNUTELLA PCONNECT/0.4\n\n")),
            HandshakeStatus::refused);
}

TEST(Peering, ListenerRefusesOversizedUnterminatedGreeting) {
  BannerScanner scanner;
  std::string greeting = "GNUTELLA ";
  greeting.append(2 * kMaxBanner, 'x');  // never terminated
  EXPECT_EQ(scanner.feed(bytes_of(greeting)), HandshakeStatus::refused);
  EXPECT_EQ(scanner.reason(), "oversized handshake banner");
}

TEST(Peering, RefusedScannerDiscardsFurtherBytes) {
  BannerScanner scanner;
  (void)scanner.feed(bytes_of("GNUTELLA CONNECT/0.6\n\n"));
  EXPECT_EQ(scanner.feed(bytes_of("more")), HandshakeStatus::refused);
  EXPECT_TRUE(scanner.leftover().empty());
}

TEST(Peering, AcceptedScannerExtendsLeftoverOnLaterFeeds) {
  BannerScanner scanner;
  (void)scanner.feed(bytes_of(kConnectBanner));
  const std::vector<std::uint8_t> frame = {1, 2, 3};
  EXPECT_EQ(scanner.feed(frame), HandshakeStatus::accepted);
  EXPECT_EQ(leftover_of(scanner), frame);
}

// --- dialer side ----------------------------------------------------------

TEST(Peering, DialerAcceptsOkBannerAsPrefix) {
  BannerScanner scanner(BannerScanner::Mode::dialer);
  EXPECT_EQ(scanner.feed(bytes_of(kOkBanner)), HandshakeStatus::accepted);
  EXPECT_TRUE(scanner.leftover().empty());
}

TEST(Peering, DialerSplicesOkBannerOutOfMidStream) {
  // Accepted links are rostered before the handshake completes, so relay
  // frames can legally precede the OK banner; the scanner must splice the
  // banner out and keep the surrounding bytes in order.
  BannerScanner scanner(BannerScanner::Mode::dialer);
  const std::vector<std::uint8_t> before = {9, 8, 7};
  const std::vector<std::uint8_t> after = {6, 5};
  std::vector<std::uint8_t> stream = before;
  const auto ok = bytes_of(kOkBanner);
  stream.insert(stream.end(), ok.begin(), ok.end());
  stream.insert(stream.end(), after.begin(), after.end());
  EXPECT_EQ(scanner.feed(stream), HandshakeStatus::accepted);
  std::vector<std::uint8_t> expected = before;
  expected.insert(expected.end(), after.begin(), after.end());
  EXPECT_EQ(leftover_of(scanner), expected);
}

TEST(Peering, DialerRefusesWhenNoOkBannerWithinLimit) {
  BannerScanner scanner(BannerScanner::Mode::dialer);
  const std::vector<std::uint8_t> garbage(kMaxBanner + 1, 0x55);
  EXPECT_EQ(scanner.feed(garbage), HandshakeStatus::refused);
  EXPECT_NE(scanner.reason().find("GNUTELLA OK"), std::string::npos);
}

TEST(Peering, DialerHasNoRawFallback) {
  // A non-banner head keeps the dialer pending (never raw) until the byte
  // budget refuses it — raw fallback is a listener-only affordance.
  BannerScanner scanner(BannerScanner::Mode::dialer);
  EXPECT_EQ(scanner.feed(bytes_of("HTTP/1.1 404 Not Found\r\n")),
            HandshakeStatus::pending);
}

// --- slicing invariance (mirrors CodecProperties) -------------------------

/// Build a random stream around a scripted outcome and return the chunk
/// boundaries to cut it at.  Outcomes cover accept (with pre/post frame
/// bytes in dialer mode, post-only for the listener), raw fallback, and
/// both refusal shapes.
std::vector<std::uint8_t> random_stream(util::Rng& rng,
                                        BannerScanner::Mode mode) {
  std::vector<std::uint8_t> stream;
  const auto append_noise = [&](std::size_t max_len) {
    const std::size_t len = rng.below(max_len + 1);
    for (std::size_t i = 0; i < len; ++i) {
      std::uint8_t byte = static_cast<std::uint8_t>(rng.below(256));
      // Keep scripted noise from accidentally containing a banner (or a
      // marker prefix that would change the listener outcome): 'G' is the
      // only byte that can start either.
      if (byte == 'G') byte = 'g';
      stream.push_back(byte);
    }
  };
  switch (rng.below(4)) {
    case 0:  // accepted
      if (mode == BannerScanner::Mode::dialer) append_noise(24);
      {
        const auto banner = bytes_of(mode == BannerScanner::Mode::dialer
                                         ? kOkBanner
                                         : kConnectBanner);
        stream.insert(stream.end(), banner.begin(), banner.end());
      }
      append_noise(24);
      break;
    case 1:  // raw fallback (listener) / pending-then-refused (dialer)
      append_noise(kMaxBanner + 32);
      stream.push_back('x');  // never empty, never a marker prefix
      break;
    case 2: {  // refused: terminated but wrong banner
      const auto wrong = bytes_of("GNUTELLA CONNECT/0.6\n\n");
      if (mode == BannerScanner::Mode::listener) {
        stream.insert(stream.end(), wrong.begin(), wrong.end());
        append_noise(16);
      } else {
        append_noise(kMaxBanner + 32);
        stream.push_back('x');
      }
      break;
    }
    default: {  // refused: oversized unterminated greeting
      if (mode == BannerScanner::Mode::listener) {
        const auto marker = bytes_of(kBannerMarker);
        stream.insert(stream.end(), marker.begin(), marker.end());
      }
      for (std::size_t i = 0; i < kMaxBanner + 16; ++i) {
        stream.push_back('y');
      }
      break;
    }
  }
  return stream;
}

TEST(PeeringProperties, ClassificationIsSlicingInvariant) {
  // 500 seeded trials across both modes: whatever the chunking — including
  // byte-at-a-time — status, leftover bytes, and refusal reason must match
  // the single-feed classification (the same invariance FrameDecoder
  // guarantees one layer down).
  util::Rng rng(0xba22e7);
  for (int trial = 0; trial < 500; ++trial) {
    const BannerScanner::Mode mode = (trial & 1) == 0
                                         ? BannerScanner::Mode::listener
                                         : BannerScanner::Mode::dialer;
    const std::vector<std::uint8_t> stream = random_stream(rng, mode);
    const BannerScanner whole = scan_sliced(mode, stream, {});

    std::vector<std::size_t> splits;
    for (std::size_t offset = 0; offset < stream.size();) {
      offset += 1 + rng.below(17);
      if (offset < stream.size()) splits.push_back(offset);
    }
    const BannerScanner sliced = scan_sliced(mode, stream, splits);
    ASSERT_EQ(sliced.status(), whole.status()) << "trial " << trial;
    EXPECT_EQ(leftover_of(sliced), leftover_of(whole)) << "trial " << trial;
    EXPECT_EQ(sliced.reason(), whole.reason()) << "trial " << trial;

    std::vector<std::size_t> every_byte;
    for (std::size_t offset = 1; offset < stream.size(); ++offset) {
      every_byte.push_back(offset);
    }
    const BannerScanner trickled = scan_sliced(mode, stream, every_byte);
    ASSERT_EQ(trickled.status(), whole.status()) << "trial " << trial;
    EXPECT_EQ(leftover_of(trickled), leftover_of(whole))
        << "trial " << trial;
  }
}

// --- parse_host_port ------------------------------------------------------

TEST(Peering, ParseHostPortAcceptsDottedQuad) {
  const auto address = parse_host_port("127.0.0.1:6346");
  ASSERT_TRUE(address.has_value());
  EXPECT_EQ(address->host, "127.0.0.1");
  EXPECT_EQ(address->port, 6346);
}

TEST(Peering, ParseHostPortRejectsMalformedInputs) {
  for (const char* bad :
       {"", ":", "127.0.0.1", "127.0.0.1:", ":6346", "localhost:6346",
        "127.0.0.1:0", "127.0.0.1:65536", "127.0.0.1:-1", "127.0.0.1:+80",
        "127.0.0.1: 80", "127.0.0.1:80x", "256.0.0.1:80", "127.0.0:80",
        "127.0.0.1:99999999999999999999"}) {
    EXPECT_FALSE(parse_host_port(bad).has_value()) << "input '" << bad << "'";
  }
}

TEST(Peering, ParseHostPortAcceptsFullRange) {
  EXPECT_EQ(parse_host_port("10.0.0.1:1")->port, 1);
  EXPECT_EQ(parse_host_port("10.0.0.1:65535")->port, 65535);
}

}  // namespace
}  // namespace aar::node
