// aar::obs — metric primitives and registry contract.
//
// The concurrency tests double as the TSan targets for obs counter bumps
// from util::ThreadPool workers (ISSUE 2 satellite): the CI thread-sanitizer
// job runs this file together with test_parallel.

#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/parallel.hpp"

namespace aar::obs {
namespace {

TEST(ObsCounter, SingleThreadedSum) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
#ifndef AAR_OBS_OFF
  EXPECT_EQ(c.value(), 42u);
#else
  EXPECT_EQ(c.value(), 0u);  // mutators compile to no-ops
#endif
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsCounter, ShardedBumpsFromManyThreadsSumExactly) {
  Counter c;
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kBumps = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::size_t i = 0; i < kBumps; ++i) c.add();
    });
  }
  for (std::thread& t : threads) t.join();
#ifndef AAR_OBS_OFF
  EXPECT_EQ(c.value(), kThreads * kBumps);
#endif
}

TEST(ObsCounter, BumpsFromParallelForWorkers) {
  Counter c;
  constexpr std::size_t kRange = 100'000;
  util::parallel_for(0, kRange, [&c](std::size_t) { c.add(); }, 4);
#ifndef AAR_OBS_OFF
  EXPECT_EQ(c.value(), kRange);
#endif
}

TEST(ObsGauge, TracksValueAndMax) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.max(), 0.0);
  g.set(3.0);
  g.set(7.5);
  g.set(2.0);
#ifndef AAR_OBS_OFF
  EXPECT_EQ(g.value(), 2.0);
  EXPECT_EQ(g.max(), 7.5);
#endif
  g.reset();
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(g.max(), 0.0);
}

TEST(ObsHistogram, BinsClampAndNaNIsDropped) {
  Histogram h(0.0, 10.0, 5);
  h.observe(0.5);
  h.observe(9.9);
  h.observe(-100.0);
  h.observe(1e300);
  h.observe(std::numeric_limits<double>::infinity());
  h.observe(std::numeric_limits<double>::quiet_NaN());
#ifndef AAR_OBS_OFF
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.dropped(), 1u);
  EXPECT_EQ(h.count(0), 2u);  // 0.5 and the clamped -100
  EXPECT_EQ(h.count(4), 3u);  // 9.9, 1e300, +inf
#else
  EXPECT_EQ(h.total(), 0u);
#endif
}

TEST(ObsTimer, RecordsCountTotalMinMax) {
  Timer t;
  t.record_ns(100);
  t.record_ns(300);
  t.record_ns(200);
#ifndef AAR_OBS_OFF
  EXPECT_EQ(t.count(), 3u);
  EXPECT_EQ(t.total_ns(), 600u);
  EXPECT_EQ(t.min_ns(), 100u);
  EXPECT_EQ(t.max_ns(), 300u);
#else
  EXPECT_EQ(t.count(), 0u);
#endif
}

TEST(ObsTimer, ScopeMeasuresSomething) {
  Timer t;
  {
    const Timer::Scope scope = t.measure();
    volatile int sink = 0;
    for (int i = 0; i < 1'000; ++i) sink = sink + i;
  }
#ifndef AAR_OBS_OFF
  EXPECT_EQ(t.count(), 1u);
#else
  EXPECT_EQ(t.count(), 0u);
#endif
}

TEST(ObsRegistry, SameNameYieldsSameMetric) {
  Registry& registry = Registry::global();
  Counter& a = registry.counter("test.registry.same");
  Counter& b = registry.counter("test.registry.same");
  EXPECT_EQ(&a, &b);
  Timer& ta = registry.timer("test.registry.timer");
  Timer& tb = registry.timer("test.registry.timer");
  EXPECT_EQ(&ta, &tb);
}

TEST(ObsRegistry, HistogramShapeIsValidated) {
  Registry& registry = Registry::global();
  EXPECT_THROW(registry.histogram("test.registry.badshape", 1.0, 1.0, 4),
               std::invalid_argument);
  EXPECT_THROW(registry.histogram("test.registry.badshape", 0.0, 1.0, 0),
               std::invalid_argument);
}

TEST(ObsRegistry, ResetZeroesInPlaceWithoutInvalidatingReferences) {
  Registry& registry = Registry::global();
  Counter& c = registry.counter("test.registry.reset");
  c.add(5);
  registry.reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);
#ifndef AAR_OBS_OFF
  EXPECT_EQ(registry.counter("test.registry.reset").value(), 2u);
#endif
}

TEST(ObsRegistry, JsonSnapshotHasSchemaAndSections) {
  Registry& registry = Registry::global();
  registry.counter("test.json.counter").add(3);
  registry.gauge("test.json.gauge").set(1.5);
  registry.histogram("test.json.hist", 0.0, 8.0, 4).observe(2.0);
  registry.timer("test.json.timer").record_ns(1'000);

  const std::vector<NamedSeries> series{{"test_series", {0.25, 0.5}}};
  std::ostringstream os;
  registry.write_json(os, series);
  const std::string json = os.str();

  EXPECT_NE(json.find("\"schema\":\"aar.metrics.v1\""), std::string::npos);
  for (const char* section :
       {"\"counters\"", "\"gauges\"", "\"timers\"", "\"histograms\"",
        "\"series\""}) {
    EXPECT_NE(json.find(section), std::string::npos) << section;
  }
  EXPECT_NE(json.find("\"test.json.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"test_series\":[0.25,0.5]"), std::string::npos);
#ifndef AAR_OBS_OFF
  EXPECT_NE(json.find("\"test.json.counter\":3"), std::string::npos);
#endif
}

TEST(ObsRegistry, TableSnapshotPrints) {
  Registry& registry = Registry::global();
  registry.counter("test.table.counter").add(1);
  std::ostringstream os;
  registry.print_table(os);
  EXPECT_NE(os.str().find("test.table.counter"), std::string::npos);
}

// The instrumented replay path populates the sim.* metrics (smoke-level: the
// deep contract is covered by test_trace_simulator and the CI schema check).
TEST(ObsRegistry, ConcurrentLookupAndBumpFromPoolWorkers) {
  Registry& registry = Registry::global();
  registry.counter("test.pool.bumps").reset();
  {
    util::ThreadPool pool(4);
    for (int wave = 0; wave < 4; ++wave) {
      for (int task = 0; task < 64; ++task) {
        pool.submit([&registry] {
          // Lookup *and* bump from workers: exercises the registry mutex
          // and the sharded cells under TSan.
          registry.counter("test.pool.bumps").add();
        });
      }
      pool.wait();
    }
  }
#ifndef AAR_OBS_OFF
  EXPECT_EQ(registry.counter("test.pool.bumps").value(), 4u * 64u);
#endif
}

}  // namespace
}  // namespace aar::obs
