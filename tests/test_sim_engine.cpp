// Unit tests for the sharded discrete-event engine itself: construction
// invariants, schedule compilation, sharded-build determinism across
// thread/shard counts, churn's sparse store overlay, and the scale driver.

#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <set>
#include <utility>

#include "overlay/policy.hpp"
#include "overlay/topology.hpp"
#include "sim/scale.hpp"
#include "util/rng.hpp"

namespace aar::sim {
namespace {

overlay::Graph small_graph(std::uint64_t seed, std::size_t nodes = 120,
                           std::size_t attach = 3) {
  util::Rng topo(seed);
  return overlay::make_barabasi_albert(nodes, attach, topo);
}

overlay::PolicyFactory flooding_factory() {
  return [](overlay::NodeId) {
    return std::make_unique<overlay::FloodingPolicy>();
  };
}

TEST(SimEngine, ShardAndThreadResolutionClampsToPopulation) {
  EngineConfig config;
  config.threads = 64;
  config.shards = 4096;
  Engine engine(config, small_graph(5, 40, 2), flooding_factory());
  EXPECT_LE(engine.shards(), 40u);
  EXPECT_LE(engine.threads(), 40u);
  EXPECT_GE(engine.shards(), 1u);
  EXPECT_GE(engine.threads(), 1u);
}

TEST(SimEngine, LegacyBuildMatchesShardedPopulationShape) {
  EngineConfig legacy;
  legacy.build = EngineConfig::Build::kLegacy;
  Engine a(legacy, small_graph(9), flooding_factory());

  EngineConfig sharded = legacy;
  sharded.build = EngineConfig::Build::kSharded;
  Engine b(sharded, small_graph(9), flooding_factory());

  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (overlay::NodeId node = 0; node < a.num_nodes(); ++node) {
    EXPECT_GT(a.store_size(node), 0u);
    EXPECT_GT(b.store_size(node), 0u);
  }
}

TEST(SimEngine, ShardedBuildIsThreadAndShardInvariant) {
  // The kSharded construction path derives every peer's store from a
  // per-peer split seed, so the resulting population must not depend on
  // how the build work was distributed.
  const auto fingerprint = [](std::size_t threads, std::size_t shards) {
    EngineConfig config;
    config.build = EngineConfig::Build::kSharded;
    config.threads = threads;
    config.shards = shards;
    config.engine_metrics = false;
    Engine engine(config, small_graph(21), flooding_factory());
    std::uint64_t hash = 14695981039346656037ULL;
    const auto mix = [&hash](std::uint64_t v) {
      hash = (hash ^ v) * 1099511628211ULL;
    };
    for (overlay::NodeId node = 0; node < engine.num_nodes(); ++node) {
      mix(engine.store_size(node));
      mix(engine.sample_target(node));
    }
    return hash;
  };
  const std::uint64_t base = fingerprint(1, 1);
  EXPECT_EQ(fingerprint(2, 8), base);
  EXPECT_EQ(fingerprint(8, 3), base);
}

TEST(SimEngine, ChurnRebuildsStoresThroughOverlay) {
  EngineConfig config;
  Engine engine(config, small_graph(13), flooding_factory());
  const overlay::NodeId victim = 7;
  const std::size_t before = engine.store_size(victim);
  ASSERT_GT(before, 0u);

  engine.replace_peer(victim, 3);
  // The replacement peer draws a fresh profile and store; the flat SoA is
  // immutable, so the new store lives in the sparse overlay and must be
  // fully visible through the public accessors.
  const std::size_t after = engine.store_size(victim);
  EXPECT_GT(after, 0u);
  std::set<workload::FileId> seen;
  for (int i = 0; i < 64; ++i) {
    const workload::FileId file = engine.sample_target(victim);
    if (engine.store_has(victim, file)) seen.insert(file);
  }
  // Searches still complete through the churned peer.
  overlay::SearchOptions options;
  options.ttl = 4;
  const auto outcome = engine.search(victim, engine.sample_target(victim),
                                     options);
  EXPECT_GT(outcome.nodes_reached, 0u);
}

TEST(SimScale, CompileScheduleInterleavesChurnBetweenEpochs) {
  ScaleConfig config;
  config.epochs = 3;
  config.searches = 4;
  config.churn = 2;
  const std::vector<SimEvent> schedule = compile_schedule(config);
  ASSERT_EQ(schedule.size(), 3 * 4 + 2);
  std::size_t searches = 0, churns = 0;
  for (const SimEvent& event : schedule) {
    if (event.kind == SimEventKind::kSearch) {
      ++searches;
    } else {
      ++churns;
      EXPECT_EQ(event.count, 2u);
    }
  }
  EXPECT_EQ(searches, 12u);
  EXPECT_EQ(churns, 2u);
  // Churn never trails the final epoch.
  EXPECT_EQ(schedule.back().kind, SimEventKind::kSearch);
}

TEST(SimScale, CompileScheduleOmitsChurnWhenDisabled) {
  ScaleConfig config;
  config.epochs = 2;
  config.searches = 3;
  config.churn = 0;
  const std::vector<SimEvent> schedule = compile_schedule(config);
  ASSERT_EQ(schedule.size(), 6u);
  for (const SimEvent& event : schedule) {
    EXPECT_EQ(event.kind, SimEventKind::kSearch);
  }
}

TEST(SimScale, RunScaleIsDeterministicAcrossThreadsWithFaults) {
  ScaleConfig config;
  config.nodes = 600;
  config.warmup = 40;
  config.searches = 60;
  config.epochs = 2;
  config.churn = 5;
  config.ttl = 4;
  config.drop = 0.05;
  config.crashed = 6;
  config.engine_metrics = false;
  config.record_outcomes = true;

  config.threads = 1;
  const ScaleResult serial = run_scale(config);
  config.threads = 4;
  config.shards = 16;
  const ScaleResult parallel = run_scale(config);

  EXPECT_EQ(serial.outcome_hash, parallel.outcome_hash);
  EXPECT_EQ(serial.outcome_bytes, parallel.outcome_bytes);
  EXPECT_EQ(serial.searches, parallel.searches);
  EXPECT_EQ(serial.hits, parallel.hits);
  EXPECT_EQ(serial.query_messages, parallel.query_messages);
  EXPECT_EQ(serial.dropped, parallel.dropped);
  EXPECT_EQ(serial.churned, parallel.churned);

  EXPECT_EQ(serial.searches, 120u);
  EXPECT_EQ(serial.churned, 5u);
  EXPECT_GT(serial.dropped, 0u);
  EXPECT_GT(serial.peers_per_second(), 0.0);
  EXPECT_GT(serial.searches_per_second(), 0.0);
  // record_outcomes keeps the byte stream for differential checks.
  EXPECT_FALSE(serial.outcome_bytes.empty());

  config.record_outcomes = false;
  const ScaleResult slim = run_scale(config);
  EXPECT_EQ(slim.outcome_hash, serial.outcome_hash);
  EXPECT_TRUE(slim.outcome_bytes.empty());
}

}  // namespace
}  // namespace aar::sim
