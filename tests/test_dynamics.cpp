// Graph mutation and overlay churn dynamics, plus the forwarding-aware
// evaluator used by the fan-out ablation.

#include <gtest/gtest.h>

#include <memory>

#include "core/forwarder.hpp"
#include "overlay/assoc_policy.hpp"
#include "overlay/experiment.hpp"
#include "overlay/graph.hpp"

namespace aar {
namespace {

// --- Graph removal -------------------------------------------------------------

TEST(GraphMutation, RemoveEdge) {
  overlay::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphMutation, RemoveThenReAdd) {
  overlay::Graph g(3);
  g.add_edge(0, 1);
  g.remove_edge(0, 1);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphMutation, DetachRemovesAllIncidentEdges) {
  overlay::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(3, 4);
  EXPECT_EQ(g.detach(0), 3u);
  EXPECT_EQ(g.degree(0), 0u);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_TRUE(g.has_edge(3, 4));
  // Neighbors' adjacency is cleaned too.
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(GraphMutation, DetachIsolatedIsNoop) {
  overlay::Graph g(2);
  EXPECT_EQ(g.detach(0), 0u);
}

// --- Network churn --------------------------------------------------------------

overlay::ExperimentConfig churn_config() {
  overlay::ExperimentConfig config;
  config.seed = 19;
  config.nodes = 200;
  config.network.files_per_node = 8;
  config.network.content.files = 1'000;
  config.network.content.categories = 16;
  return config;
}

TEST(NetworkChurn, ReplacePeerResetsStateAndRelinks) {
  auto config = churn_config();
  overlay::Network net = overlay::make_network(config, [](overlay::NodeId) {
    return std::make_unique<overlay::AssociationRoutingPolicy>(
        overlay::AssociationPolicyConfig{.rebuild_every = 4, .min_support = 2});
  });
  const overlay::NodeId victim = 7;
  // Give the victim's policy some state.
  auto& policy = dynamic_cast<overlay::AssociationRoutingPolicy&>(
      net.policy(victim));
  overlay::Query query;
  for (trace::Guid g = 1; g <= 8; ++g) {
    query.guid = g;
    policy.on_reply_path(query, victim, 3, 4);
  }
  EXPECT_FALSE(policy.rules().empty());
  const auto old_files = net.peer(victim).store.files();

  net.replace_peer(victim, 3);

  auto& fresh = dynamic_cast<overlay::AssociationRoutingPolicy&>(
      net.policy(victim));
  EXPECT_TRUE(fresh.rules().empty());              // newcomer knows nothing
  EXPECT_GE(net.graph().degree(victim), 3u);       // re-linked
  EXPECT_GT(net.peer(victim).store.size(), 0u);    // new content
  // With a 1,000-file catalogue an identical store is (practically)
  // impossible; check at least one difference.
  bool differs = net.peer(victim).store.files().size() != old_files.size();
  for (workload::FileId f : net.peer(victim).store.files()) {
    if (!old_files.contains(f)) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(NetworkChurn, ChurnKeepsNetworkSearchable) {
  auto config = churn_config();
  overlay::Network net = overlay::make_network(config, [](overlay::NodeId) {
    return std::make_unique<overlay::FloodingPolicy>();
  });
  util::Rng rng(5);
  overlay::TrafficStats before;
  overlay::run_queries(net, 300, {}, rng, &before);
  for (int epoch = 0; epoch < 5; ++epoch) net.churn(20, 3);
  overlay::TrafficStats after;
  overlay::run_queries(net, 300, {}, rng, &after);
  EXPECT_GT(after.success_rate(), before.success_rate() - 0.15);
  EXPECT_GT(net.graph().num_edges(), 100u);  // did not disintegrate
}

TEST(NetworkChurn, EdgeCountStaysRoughlyStable) {
  auto config = churn_config();
  overlay::Network net = overlay::make_network(config, [](overlay::NodeId) {
    return std::make_unique<overlay::FloodingPolicy>();
  });
  const std::size_t edges_before = net.graph().num_edges();
  net.churn(100, 3);  // half the network replaced
  const std::size_t edges_after = net.graph().num_edges();
  EXPECT_GT(edges_after, edges_before / 2);
  EXPECT_LT(edges_after, edges_before * 2);
}

// --- evaluate_forwarding ----------------------------------------------------------

using trace::QueryReplyPair;

QueryReplyPair pair(trace::Guid guid, core::HostId source,
                    core::HostId replier) {
  return {.time = 0.0, .guid = guid, .source_host = source,
          .replying_neighbor = replier};
}

TEST(EvaluateForwarding, SuccessRequiresChosenTarget) {
  std::vector<QueryReplyPair> train;
  trace::Guid guid = 0;
  for (int i = 0; i < 6; ++i) train.push_back(pair(++guid, 1, 100));
  for (int i = 0; i < 3; ++i) train.push_back(pair(++guid, 1, 101));
  const core::RuleSet rules = core::RuleSet::build(train, 1);

  // Top-1 forwards only to 100: replies via 101 are covered misses.
  const std::vector<QueryReplyPair> test{pair(50, 1, 100), pair(51, 1, 101)};
  util::Rng rng(1);
  const core::Forwarder top1({.k = 1});
  const core::BlockMeasures m1 =
      core::evaluate_forwarding(rules, test, top1, rng);
  EXPECT_EQ(m1.covered, 2u);
  EXPECT_EQ(m1.successful, 1u);

  const core::Forwarder top2({.k = 2});
  const core::BlockMeasures m2 =
      core::evaluate_forwarding(rules, test, top2, rng);
  EXPECT_EQ(m2.successful, 2u);
}

TEST(EvaluateForwarding, NeverExceedsRuleSetEvaluate) {
  // Property: forwarding success at any k is bounded by the plain measure.
  util::Rng data_rng(9);
  std::vector<QueryReplyPair> train;
  std::vector<QueryReplyPair> test;
  for (int i = 0; i < 600; ++i) {
    train.push_back(pair(static_cast<trace::Guid>(i),
                         static_cast<core::HostId>(data_rng.below(10)),
                         static_cast<core::HostId>(100 + data_rng.below(6))));
    test.push_back(pair(static_cast<trace::Guid>(10'000 + i),
                        static_cast<core::HostId>(data_rng.below(10)),
                        static_cast<core::HostId>(100 + data_rng.below(6))));
  }
  const core::RuleSet rules = core::RuleSet::build(train, 5);
  const core::BlockMeasures full = core::evaluate(rules, test);
  util::Rng rng(2);
  for (std::size_t k : {1u, 2u, 3u, 10u}) {
    const core::Forwarder forwarder({.k = k});
    const core::BlockMeasures m =
        core::evaluate_forwarding(rules, test, forwarder, rng);
    EXPECT_EQ(m.covered, full.covered);
    EXPECT_LE(m.successful, full.successful);
  }
}

TEST(EvaluateForwarding, OneDecisionPerQuery) {
  // Multiple replies to one GUID reuse the query's forwarding choice.
  std::vector<QueryReplyPair> train;
  trace::Guid guid = 0;
  for (int i = 0; i < 4; ++i) train.push_back(pair(++guid, 1, 100));
  for (int i = 0; i < 4; ++i) train.push_back(pair(++guid, 1, 101));
  const core::RuleSet rules = core::RuleSet::build(train, 1);
  // Same GUID answered through both neighbors; top-1 picks exactly one, so
  // success counts once regardless of which reply matches.
  const std::vector<QueryReplyPair> test{pair(99, 1, 101), pair(99, 1, 100)};
  util::Rng rng(3);
  const core::Forwarder top1({.k = 1});
  const core::BlockMeasures m =
      core::evaluate_forwarding(rules, test, top1, rng);
  EXPECT_EQ(m.total_queries, 1u);
  EXPECT_EQ(m.covered, 1u);
  EXPECT_EQ(m.successful, 1u);
}

}  // namespace
}  // namespace aar
