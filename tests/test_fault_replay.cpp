// Seeded-replay goldens: a fault scenario plus one seed fully determines
// the run.  Each golden scenario is executed twice end to end — fresh
// network, fresh injector, fresh driver rng — and the canonical
// SearchOutcome byte streams, their FNV-1a fingerprints, the per-epoch
// stats, and the (timer-free) metrics JSON snapshots must all be identical.
// This is the in-process twin of CI's `aar_sim faults` determinism gate.

#include "overlay/fault_experiment.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/registry.hpp"

namespace aar::overlay {
namespace {

fault::Scenario golden(const std::string& name) {
  return fault::load_scenario(std::string(AAR_TEST_DATA_DIR) + "/" + name);
}

/// Run the scenario and snapshot the obs registry (timers excluded — they
/// record wall clock, the one legitimately non-deterministic field).
struct ReplayCapture {
  FaultRunResult result;
  std::string metrics_json;
};

ReplayCapture run_and_capture(const fault::Scenario& scenario,
                              std::uint64_t seed) {
  obs::Registry::global().reset();
  ReplayCapture capture;
  capture.result = run_fault_scenario(scenario, seed);
  std::ostringstream json;
  obs::Registry::global().write_json(json, {}, /*include_timers=*/false);
  capture.metrics_json = json.str();
  return capture;
}

class GoldenReplay : public ::testing::TestWithParam<const char*> {};

TEST_P(GoldenReplay, SameSeedReplaysByteIdentically) {
  const fault::Scenario scenario = golden(GetParam());
  const ReplayCapture first = run_and_capture(scenario, 7);
  const ReplayCapture second = run_and_capture(scenario, 7);

  ASSERT_FALSE(first.result.outcome_bytes.empty());
  EXPECT_EQ(first.result.outcome_bytes, second.result.outcome_bytes);
  EXPECT_EQ(first.result.outcome_hash, second.result.outcome_hash);
  EXPECT_EQ(first.result.searches, second.result.searches);
  EXPECT_EQ(first.result.hits, second.result.hits);

  ASSERT_EQ(first.result.epochs.size(), second.result.epochs.size());
  for (std::size_t e = 0; e < first.result.epochs.size(); ++e) {
    EXPECT_EQ(first.result.epochs[e].hits, second.result.epochs[e].hits);
    EXPECT_EQ(first.result.epochs[e].timeouts,
              second.result.epochs[e].timeouts);
    EXPECT_EQ(first.result.epochs[e].retries, second.result.epochs[e].retries);
    EXPECT_EQ(first.result.epochs[e].dropped, second.result.epochs[e].dropped);
    EXPECT_EQ(first.result.epochs[e].messages,
              second.result.epochs[e].messages);
  }

  // Metrics JSON (minus timers) is part of the replay contract.
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST_P(GoldenReplay, DifferentSeedsDiverge) {
  const fault::Scenario scenario = golden(GetParam());
  const FaultRunResult a = run_fault_scenario(scenario, 7);
  const FaultRunResult b = run_fault_scenario(scenario, 8);
  EXPECT_NE(a.outcome_hash, b.outcome_hash);
}

TEST_P(GoldenReplay, FaultsActuallyInjected) {
  // Guard against a silently disabled injector: the golden scenarios all
  // carry nonzero drop rates, so faulted runs must lose messages and
  // diverge from their lossless twins.
  const fault::Scenario scenario = golden(GetParam());
  const FaultRunResult faulted = run_fault_scenario(scenario, 7, true);
  const FaultRunResult lossless = run_fault_scenario(scenario, 7, false);
  std::uint64_t dropped = 0;
  for (const FaultEpochStats& e : faulted.epochs) dropped += e.dropped;
  EXPECT_GT(dropped, 0u);
  EXPECT_NE(faulted.outcome_hash, lossless.outcome_hash);
}

INSTANTIATE_TEST_SUITE_P(Goldens, GoldenReplay,
                         ::testing::Values("golden_small.v1",
                                           "golden_churnstorm.v1"),
                         [](const auto& info) {
                           std::string name = info.param;
                           name = name.substr(0, name.find('.'));
                           return name;
                         });

TEST(OutcomeEncoding, CanonicalAndOrderSensitive) {
  SearchOutcome a;
  a.hit = true;
  a.hops_to_first_hit = 3;
  a.query_messages = 17;
  a.retry_stamps = {4, 9};
  a.retries_used = 2;

  std::vector<std::uint8_t> one, two, reordered;
  append_outcome(one, a);
  append_outcome(two, a);
  EXPECT_EQ(one, two);

  SearchOutcome b = a;
  b.retry_stamps = {9, 4};
  append_outcome(reordered, b);
  EXPECT_NE(one, reordered);
  EXPECT_NE(fnv1a(one), fnv1a(reordered));

  // Fixed-width encoding: size is a function of retry count only.
  EXPECT_EQ(one.size(), 5u + 4u * 4u + 5u * 8u + 4u + 2u * 8u);
}

TEST(OutcomeEncoding, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors ("", "a", "foobar").
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a({'a'}), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a({'f', 'o', 'o', 'b', 'a', 'r'}), 0x85944171f73967e8ULL);
}

}  // namespace
}  // namespace aar::overlay
