// Property and stress tests for the aar::par building blocks: the GUID
// shard function, ShardCounts + IncrementalRuleMiner::replace_window (the
// canonical-order merge), ShardExecutor, and PrefetchBlockSource.  The
// differential end-to-end suite lives in test_par_differential.cpp; here
// each piece is checked against its serial ground truth in isolation,
// including under ThreadPool saturation (the "Par" suites run in the TSan
// CI job).

#include "par/executor.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

#include "core/measures.hpp"
#include "core/ruleset.hpp"
#include "mining/incremental_miner.hpp"
#include "par/pipeline.hpp"
#include "trace/block_source.hpp"
#include "trace/record.hpp"

namespace aar::par {
namespace {

using trace::QueryReplyPair;

QueryReplyPair pair(trace::Guid guid, trace::HostId source,
                    trace::HostId replier) {
  return {.time = 0.0, .guid = guid, .source_host = source,
          .replying_neighbor = replier};
}

/// Random pair stream with enough host collisions that support pruning and
/// multi-reply GUIDs both actually occur.
std::vector<QueryReplyPair> random_stream(std::uint64_t seed,
                                          std::size_t pairs) {
  std::mt19937_64 rng(seed);
  std::vector<QueryReplyPair> stream;
  stream.reserve(pairs);
  trace::Guid guid = 0;
  while (stream.size() < pairs) {
    ++guid;
    const auto source = static_cast<trace::HostId>(rng() % 40);
    // 1–3 replies per query, sometimes through distinct neighbors.
    const std::size_t replies = 1 + rng() % 3;
    for (std::size_t r = 0; r < replies && stream.size() < pairs; ++r) {
      stream.push_back(
          pair(guid, source, static_cast<trace::HostId>(100 + rng() % 12)));
    }
  }
  return stream;
}

std::vector<std::vector<QueryReplyPair>> partition(
    const std::vector<QueryReplyPair>& stream, std::size_t shards) {
  std::vector<std::vector<QueryReplyPair>> out(shards);
  for (const QueryReplyPair& p : stream) {
    out[shard_of(p.guid, shards)].push_back(p);
  }
  return out;
}

// ------------------------------------------------------------ shard_of

TEST(ParShardOf, PinnedValuesGuardPlatformStability) {
  // The partition must be identical across platforms and standard libraries
  // (it feeds deterministic par.* metrics), so the SplitMix64 finalizer is
  // pinned to concrete values rather than just range-checked.
  EXPECT_EQ(shard_of(0, 16), 15u);
  EXPECT_EQ(shard_of(1, 16), 1u);
  EXPECT_EQ(shard_of(42, 16), 5u);
  EXPECT_EQ(shard_of(~std::uint64_t{0}, 16), 0u);
  EXPECT_EQ(shard_of(0, 7), 2u);
  EXPECT_EQ(shard_of(42, 7), 5u);
}

TEST(ParShardOf, AlwaysBelowShardCountAndSpreads) {
  for (const std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
    std::vector<std::size_t> hits(shards, 0);
    for (trace::Guid guid = 0; guid < 4'096; ++guid) {
      const std::size_t s = shard_of(guid, shards);
      ASSERT_LT(s, shards);
      ++hits[s];
    }
    // A degenerate shard function would funnel everything into one bucket
    // and serialize the pool; require a loose spread instead.
    for (const std::size_t h : hits) {
      EXPECT_GT(h, 4'096 / (4 * shards));
    }
  }
}

// ------------------------------------------------- replace_window merge

TEST(ParShardMerge, MergedCountsMatchSerialMinerForAnyPartition) {
  const auto stream = random_stream(17, 3'000);
  for (const std::size_t shards : {1u, 2u, 3u, 7u, 16u}) {
    auto buckets = partition(stream, shards);
    std::vector<mining::ShardCounts> counts(shards);
    std::vector<mining::ShardCounts*> handles;
    for (std::size_t s = 0; s < shards; ++s) {
      counts[s].count(buckets[s]);
      handles.push_back(&counts[s]);
    }

    mining::IncrementalRuleMiner merged({.window = 0, .min_support = 3});
    merged.replace_window(stream, handles);

    mining::IncrementalRuleMiner serial({.window = 0, .min_support = 3});
    serial.add(stream);
    serial.evict_to(stream.size());

    EXPECT_EQ(merged.snapshot(), serial.snapshot()) << shards << " shards";
    EXPECT_EQ(merged.snapshot(), core::RuleSet::build(stream, 3));
  }
}

TEST(ParShardMerge, ReplaceWindowRetiresPreviousWindowExactly) {
  // Sliding semantics: after a window slide, merged and serial miners must
  // agree not only on the snapshot but on window and eviction accounting.
  const auto first = random_stream(5, 2'000);
  const auto second = random_stream(6, 2'500);

  mining::IncrementalRuleMiner merged({.window = 0, .min_support = 2});
  mining::IncrementalRuleMiner serial({.window = 0, .min_support = 2});
  merged.add(first);
  merged.evict_to(first.size());
  serial.add(first);
  serial.evict_to(first.size());
  ASSERT_EQ(merged.snapshot(), serial.snapshot());

  const std::size_t shards = 7;
  auto buckets = partition(second, shards);
  std::vector<mining::ShardCounts> counts(shards);
  std::vector<mining::ShardCounts*> handles;
  for (std::size_t s = 0; s < shards; ++s) {
    counts[s].count(buckets[s]);
    handles.push_back(&counts[s]);
  }
  merged.replace_window(second, handles);
  serial.add(second);
  serial.evict_to(second.size());

  EXPECT_EQ(merged.window_size(), serial.window_size());
  EXPECT_EQ(merged.snapshot(), serial.snapshot());
  EXPECT_EQ(merged.snapshot(), core::RuleSet::build(second, 2));
}

TEST(ParShardMerge, ShardCountsAccumulateAndClear) {
  mining::ShardCounts counts;
  EXPECT_EQ(counts.distinct_antecedents(), 0u);
  counts.count(pair(1, 10, 100));
  counts.count(pair(2, 10, 101));
  counts.count(pair(3, 20, 100));
  EXPECT_EQ(counts.distinct_antecedents(), 2u);
  counts.clear();
  EXPECT_EQ(counts.distinct_antecedents(), 0u);
}

// ----------------------------------------------------------- executor

TEST(ParExecutor, EvaluateMatchesSerialEvaluate) {
  const auto train = random_stream(21, 2'000);
  const auto test = random_stream(22, 2'000);
  const core::RuleSet rules = core::RuleSet::build(train, 2);
  const core::BlockMeasures serial = core::evaluate(rules, test);
  for (const std::size_t shards : {1u, 3u, 16u}) {
    ShardExecutor executor(2, shards);
    const core::BlockMeasures sharded = executor.evaluate(rules, test);
    EXPECT_EQ(sharded.total_queries, serial.total_queries);
    EXPECT_EQ(sharded.covered, serial.covered);
    EXPECT_EQ(sharded.successful, serial.successful);
  }
}

TEST(ParExecutor, MineMatchesSerialAddEvict) {
  const auto block = random_stream(23, 2'500);
  ShardExecutor executor(3);
  mining::IncrementalRuleMiner mined({.window = 0, .min_support = 3});
  executor.mine(mined, block);
  mining::IncrementalRuleMiner serial({.window = 0, .min_support = 3});
  serial.add(block);
  serial.evict_to(block.size());
  EXPECT_EQ(mined.snapshot(), serial.snapshot());
}

TEST(ParExecutor, ClampsDegenerateConfiguration) {
  ShardExecutor executor(1, 0);  // 0 shards clamps to 1
  EXPECT_EQ(executor.shards(), 1u);
  EXPECT_GE(executor.threads(), 1u);
  const auto block = random_stream(24, 500);
  const core::RuleSet rules = core::RuleSet::build(block, 1);
  const core::BlockMeasures serial = core::evaluate(rules, block);
  EXPECT_EQ(executor.evaluate(rules, block).covered, serial.covered);
}

TEST(ParExecutor, ThreadPoolSaturationStress) {
  // Far more shards than workers, many consecutive blocks, alternating
  // evaluate/mine — the queue is permanently saturated.  Every iteration
  // must still match the serial ground truth (and run clean under TSan).
  ShardExecutor executor(8, 32);
  mining::IncrementalRuleMiner mined({.window = 0, .min_support = 2});
  mining::IncrementalRuleMiner serial({.window = 0, .min_support = 2});
  for (std::uint64_t round = 0; round < 25; ++round) {
    const auto block = random_stream(100 + round, 1'200);
    const core::RuleSet rules = core::RuleSet::build(block, 2);
    const core::BlockMeasures expect = core::evaluate(rules, block);
    const core::BlockMeasures got = executor.evaluate(rules, block);
    ASSERT_EQ(got.total_queries, expect.total_queries) << round;
    ASSERT_EQ(got.covered, expect.covered) << round;
    ASSERT_EQ(got.successful, expect.successful) << round;

    executor.mine(mined, block);
    serial.add(block);
    serial.evict_to(block.size());
    ASSERT_EQ(mined.snapshot(), serial.snapshot()) << round;
  }
}

// ----------------------------------------------------------- pipeline

TEST(ParPrefetch, YieldsExactlyTheInnerBlockSequence) {
  const auto stream = random_stream(31, 5'000);
  constexpr std::size_t kBlock = 700;
  for (const std::size_t depth : {1u, 2u, 5u}) {
    trace::SpanBlockSource inner(stream);
    PrefetchBlockSource prefetch(inner, kBlock, depth);
    trace::SpanBlockSource expect(stream);
    while (true) {
      const auto want = expect.next_block(kBlock);
      const auto got = prefetch.next_block(kBlock);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t i = 0; i < want.size(); ++i) {
        ASSERT_EQ(got[i], want[i]);
      }
      if (want.empty()) break;
    }
    // Exhausted sources stay exhausted.
    EXPECT_TRUE(prefetch.next_block(kBlock).empty());
  }
}

TEST(ParPrefetch, MismatchedBlockSizeThrows) {
  const auto stream = random_stream(32, 1'000);
  trace::SpanBlockSource inner(stream);
  PrefetchBlockSource prefetch(inner, 100);
  EXPECT_THROW((void)prefetch.next_block(200), std::invalid_argument);
}

TEST(ParPrefetch, ZeroBlockSizeThrows) {
  const auto stream = random_stream(33, 100);
  trace::SpanBlockSource inner(stream);
  EXPECT_THROW(PrefetchBlockSource(inner, 0), std::invalid_argument);
}

namespace {
/// Inner source that fails after a few good blocks.
class ThrowingSource final : public trace::BlockSource {
 public:
  explicit ThrowingSource(std::span<const QueryReplyPair> pairs)
      : inner_(pairs) {}
  [[nodiscard]] std::span<const QueryReplyPair> next_block(
      std::size_t block_size) override {
    if (++calls_ > 2) throw std::runtime_error("decode failed");
    return inner_.next_block(block_size);
  }

 private:
  trace::SpanBlockSource inner_;
  int calls_ = 0;
};
}  // namespace

TEST(ParPrefetch, ProducerErrorSurfacesToConsumer) {
  const auto stream = random_stream(34, 2'000);
  ThrowingSource inner(stream);
  PrefetchBlockSource prefetch(inner, 500, 1);
  EXPECT_FALSE(prefetch.next_block(500).empty());
  EXPECT_FALSE(prefetch.next_block(500).empty());
  EXPECT_THROW((void)prefetch.next_block(500), std::runtime_error);
}

TEST(ParPrefetch, DestructionWithUndrainedQueueDoesNotHang) {
  const auto stream = random_stream(35, 10'000);
  trace::SpanBlockSource inner(stream);
  {
    PrefetchBlockSource prefetch(inner, 500, 3);
    (void)prefetch.next_block(500);  // producer is mid-stream with a full queue
  }
  SUCCEED();  // destructor unwound the stalled producer
}

}  // namespace
}  // namespace aar::par
