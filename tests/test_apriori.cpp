#include "assoc/apriori.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace aar::assoc {
namespace {

TransactionDb classic_db() {
  // The canonical textbook dataset (Agrawal et al. style).
  TransactionDb db;
  db.add({1, 3, 4});
  db.add({2, 3, 5});
  db.add({1, 2, 3, 5});
  db.add({2, 5});
  return db;
}

std::map<Itemset, std::uint64_t> as_map(const std::vector<FrequentItemset>& fs) {
  std::map<Itemset, std::uint64_t> m;
  for (const auto& f : fs) m.emplace(f.items, f.count);
  return m;
}

TEST(Apriori, ClassicDatasetFrequentItemsets) {
  Apriori miner({.min_support_count = 2});
  const auto frequent = as_map(miner.mine(classic_db()));
  // Hand-derived: {1}:2 {2}:3 {3}:3 {5}:3 {1,3}:2 {2,3}:2 {2,5}:3 {3,5}:2 {2,3,5}:2
  EXPECT_EQ(frequent.size(), 9u);
  EXPECT_EQ(frequent.at({1}), 2u);
  EXPECT_EQ(frequent.at({2}), 3u);
  EXPECT_EQ(frequent.at({3}), 3u);
  EXPECT_EQ(frequent.at({5}), 3u);
  EXPECT_EQ(frequent.at({1, 3}), 2u);
  EXPECT_EQ(frequent.at({2, 3}), 2u);
  EXPECT_EQ(frequent.at({2, 5}), 3u);
  EXPECT_EQ(frequent.at({3, 5}), 2u);
  EXPECT_EQ(frequent.at({2, 3, 5}), 2u);
  EXPECT_FALSE(frequent.contains({4}));
  EXPECT_FALSE(frequent.contains({1, 2}));
}

TEST(Apriori, EmptyDbYieldsNothing) {
  Apriori miner({.min_support_count = 1});
  EXPECT_TRUE(miner.mine(TransactionDb{}).empty());
  EXPECT_TRUE(miner.rules(TransactionDb{}).empty());
}

TEST(Apriori, MinSupportOneFindsEverySubsetOfEveryTransaction) {
  TransactionDb db;
  db.add({1, 2});
  Apriori miner({.min_support_count = 1});
  const auto frequent = as_map(miner.mine(db));
  EXPECT_EQ(frequent.size(), 3u);  // {1} {2} {1,2}
  EXPECT_EQ(frequent.at({1, 2}), 1u);
}

TEST(Apriori, SupportMonotonicity) {
  // Anti-monotone property: every subset of a frequent itemset is at least
  // as frequent.
  const TransactionDb db = classic_db();
  Apriori miner({.min_support_count = 2});
  const auto frequent = as_map(miner.mine(db));
  for (const auto& [items, count] : frequent) {
    if (items.size() < 2) continue;
    for (std::size_t skip = 0; skip < items.size(); ++skip) {
      Itemset subset;
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i != skip) subset.push_back(items[i]);
      }
      ASSERT_TRUE(frequent.contains(subset));
      EXPECT_GE(frequent.at(subset), count);
    }
  }
}

TEST(Apriori, RaisingThresholdShrinksResult) {
  const TransactionDb db = classic_db();
  std::size_t previous = SIZE_MAX;
  for (std::uint64_t threshold : {1, 2, 3, 4, 5}) {
    Apriori miner({.min_support_count = threshold});
    const std::size_t count = miner.mine(db).size();
    EXPECT_LE(count, previous);
    previous = count;
  }
}

TEST(Apriori, MatchesBruteForceOnRandomishData) {
  // Property check against exhaustive enumeration over a small universe.
  TransactionDb db;
  std::uint64_t state = 99;
  for (int t = 0; t < 40; ++t) {
    Itemset txn;
    for (Item item = 0; item < 6; ++item) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      if ((state >> 60) < 6) txn.push_back(item);  // ~38% inclusion
    }
    db.add(std::move(txn));
  }
  constexpr std::uint64_t kThreshold = 5;
  Apriori miner({.min_support_count = kThreshold});
  const auto mined = as_map(miner.mine(db));

  std::map<Itemset, std::uint64_t> expected;
  for (unsigned mask = 1; mask < 64; ++mask) {
    Itemset items;
    for (Item item = 0; item < 6; ++item) {
      if (mask & (1u << item)) items.push_back(item);
    }
    const std::uint64_t count = db.count_support(items);
    if (count >= kThreshold) expected.emplace(std::move(items), count);
  }
  EXPECT_EQ(mined, expected);
}

TEST(Apriori, MaxItemsetSizeCapsLevels) {
  const TransactionDb db = classic_db();
  Apriori miner({.min_support_count = 2, .max_itemset_size = 1});
  for (const auto& f : miner.mine(db)) EXPECT_EQ(f.items.size(), 1u);
}

TEST(Apriori, RulesRespectMinConfidence) {
  const TransactionDb db = classic_db();
  Apriori strict({.min_support_count = 2, .min_confidence = 0.99});
  for (const auto& rule : strict.rules(db)) {
    EXPECT_GE(rule.confidence(), 0.99);
  }
  // {5} -> {2} has confidence 3/3 = 1.
  const auto rules = strict.rules(db);
  const bool found = std::any_of(rules.begin(), rules.end(), [](const Rule& r) {
    return r.antecedent == Itemset{5} && r.consequent == Itemset{2};
  });
  EXPECT_TRUE(found);
}

TEST(Apriori, RuleCountsAreConsistent) {
  const TransactionDb db = classic_db();
  Apriori miner({.min_support_count = 2, .min_confidence = 0.0});
  for (const auto& rule : miner.rules(db)) {
    // Antecedent and consequent are disjoint and non-empty.
    EXPECT_FALSE(rule.antecedent.empty());
    EXPECT_FALSE(rule.consequent.empty());
    EXPECT_TRUE(set_difference(rule.antecedent, rule.consequent) ==
                rule.antecedent);
    // Raw counts match direct queries.
    EXPECT_EQ(rule.counts.count_a, db.count_support(rule.antecedent));
    EXPECT_EQ(rule.counts.count_c, db.count_support(rule.consequent));
    EXPECT_EQ(rule.counts.count_ac,
              db.count_support(set_union(rule.antecedent, rule.consequent)));
    EXPECT_EQ(rule.counts.total, db.size());
  }
}

TEST(Apriori, RuleGenerationSplitsEverySubset) {
  // A single frequent 3-itemset yields 6 rules (2^3 - 2 splits).
  TransactionDb db;
  db.add({1, 2, 3});
  db.add({1, 2, 3});
  Apriori miner({.min_support_count = 2, .min_confidence = 0.0});
  std::size_t from_triple = 0;
  for (const auto& rule : miner.rules(db)) {
    if (rule.antecedent.size() + rule.consequent.size() == 3) ++from_triple;
  }
  EXPECT_EQ(from_triple, 6u);
}

TEST(Apriori, DeterministicOrdering) {
  const TransactionDb db = classic_db();
  Apriori miner({.min_support_count = 2});
  const auto a = miner.mine(db);
  const auto b = miner.mine(db);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].items, b[i].items);
    EXPECT_EQ(a[i].count, b[i].count);
  }
  // Levels come smallest-first.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].items.size(), a[i].items.size());
  }
}

TEST(Rule, ToStringIsReadable) {
  Rule rule;
  rule.antecedent = {1};
  rule.consequent = {2};
  rule.counts = {.total = 10, .count_a = 5, .count_c = 5, .count_ac = 4};
  const std::string s = rule.to_string();
  EXPECT_NE(s.find("{1} -> {2}"), std::string::npos);
  EXPECT_NE(s.find("conf=0.80"), std::string::npos);
}

}  // namespace
}  // namespace aar::assoc
