#include "overlay/network.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace aar::overlay {
namespace {

/// Line topology 0 - 1 - 2 - ... - (n-1).
Graph line_graph(std::size_t n) {
  Graph g(n);
  for (NodeId i = 0; i + 1 < n; ++i) g.add_edge(i, i + 1);
  return g;
}

PolicyFactory flooding_factory() {
  return [](NodeId) { return std::make_unique<FloodingPolicy>(); };
}

NetworkConfig tiny_config() {
  NetworkConfig config;
  config.seed = 3;
  config.files_per_node = 4;
  config.content.files = 200;
  config.content.categories = 8;
  return config;
}

/// Plant `file` at exactly `holder`, removing it elsewhere is not possible
/// through the public API, so use a fresh rare file id instead: pick one no
/// store contains.
workload::FileId unowned_file(const Network& network) {
  for (workload::FileId f = network.catalogue().size(); f-- > 0;) {
    if (network.replica_count(f) == 0) return f;
  }
  return workload::kNoFile;
}

TEST(Network, FloodReachesWholeLineWithinTtl) {
  Network net(tiny_config(), line_graph(6), flooding_factory());
  const workload::FileId missing = unowned_file(net);
  ASSERT_NE(missing, workload::kNoFile);
  const SearchOutcome out = net.search(0, missing, {.ttl = 5});
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.nodes_reached, 6u);
  EXPECT_EQ(out.query_messages, 5u);  // one per hop down the line
}

TEST(Network, TtlLimitsScope) {
  Network net(tiny_config(), line_graph(6), flooding_factory());
  const workload::FileId missing = unowned_file(net);
  const SearchOutcome out = net.search(0, missing, {.ttl = 2});
  EXPECT_EQ(out.nodes_reached, 3u);  // origin + 2 hops
  EXPECT_EQ(out.query_messages, 2u);
}

TEST(Network, FindsPlantedFileAndCountsHops) {
  Network net(tiny_config(), line_graph(5), flooding_factory());
  const workload::FileId file = unowned_file(net);
  // Plant at node 3 via the test-visible store of a const peer is not
  // allowed; use a policy-level check instead: plant through const_cast-free
  // path — search for a file node 3 already has.
  workload::FileId owned = workload::kNoFile;
  for (workload::FileId f : net.peer(3).store.files()) {
    owned = f;
    break;
  }
  ASSERT_NE(owned, workload::kNoFile);
  // Ensure closer nodes do not have it; if they do, hops just come out lower,
  // so only assert the hit and the hop bound.
  const SearchOutcome out = net.search(0, owned, {.ttl = 5});
  EXPECT_TRUE(out.hit);
  EXPECT_LE(out.hops_to_first_hit, 3u);
  EXPECT_GE(out.replicas_found, 1u);
  (void)file;
}

TEST(Network, OriginOwningFileIsZeroHopHit) {
  Network net(tiny_config(), line_graph(4), flooding_factory());
  workload::FileId owned = workload::kNoFile;
  for (workload::FileId f : net.peer(2).store.files()) {
    owned = f;
    break;
  }
  ASSERT_NE(owned, workload::kNoFile);
  const SearchOutcome out = net.search(2, owned, {.ttl = 3});
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.hops_to_first_hit, 0u);
}

TEST(Network, ReplyMessagesMatchPathLength) {
  // Star: center 0, leaves 1..4.  A hit at a leaf is 1 hop; reply = 1 msg.
  Graph star(5);
  for (NodeId leaf = 1; leaf < 5; ++leaf) star.add_edge(0, leaf);
  Network net(tiny_config(), std::move(star), flooding_factory());
  workload::FileId owned = workload::kNoFile;
  for (workload::FileId f : net.peer(3).store.files()) {
    bool elsewhere = false;
    for (NodeId n = 0; n < 5; ++n) {
      if (n != 3 && net.peer(n).store.has(f)) elsewhere = true;
    }
    if (!elsewhere) {
      owned = f;
      break;
    }
  }
  ASSERT_NE(owned, workload::kNoFile);
  const SearchOutcome out = net.search(0, owned, {.ttl = 2});
  EXPECT_TRUE(out.hit);
  EXPECT_EQ(out.hops_to_first_hit, 1u);
  EXPECT_EQ(out.reply_messages, 1u);
  EXPECT_EQ(out.query_messages, 4u);  // flood to 4 leaves
}

TEST(Network, DuplicateSuppressionOnACycle) {
  // Triangle: flooding from 0 sends 2 messages out, then 1<->2 exchange two
  // duplicates that are dropped; total query messages = 2 + 2 = 4 (TTL 3).
  Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  Network net(tiny_config(), std::move(triangle), flooding_factory());
  const workload::FileId missing = unowned_file(net);
  const SearchOutcome out = net.search(0, missing, {.ttl = 3});
  EXPECT_EQ(out.nodes_reached, 3u);
  EXPECT_EQ(out.query_messages, 4u);
}

TEST(Network, ExpandingRingStopsEarlyOnNearbyContent) {
  Network net(tiny_config(), line_graph(8), flooding_factory());
  workload::FileId owned = workload::kNoFile;
  for (workload::FileId f : net.peer(1).store.files()) {
    owned = f;
    break;
  }
  ASSERT_NE(owned, workload::kNoFile);
  const SearchOutcome ring =
      net.search(0, owned, {.ttl = 7, .mode = SearchMode::kExpandingRing});
  EXPECT_TRUE(ring.hit);
  // TTL-1 ring suffices: exactly 1 query message if node 1 holds it, or a
  // couple more if retried; in all cases well below a TTL-7 line flood.
  EXPECT_LE(ring.query_messages, 4u);
}

TEST(Network, ExpandingRingEventuallyUsesFullTtl) {
  Network net(tiny_config(), line_graph(8), flooding_factory());
  const workload::FileId missing = unowned_file(net);
  const SearchOutcome ring =
      net.search(0, missing, {.ttl = 7, .mode = SearchMode::kExpandingRing});
  EXPECT_FALSE(ring.hit);
  // Rings 1, 2, 4, 7 on a line: 1 + 2 + 4 + 7 = 14 query messages.
  EXPECT_EQ(ring.query_messages, 14u);
}

TEST(Network, SampleTargetRespectsInterests) {
  NetworkConfig config = tiny_config();
  config.content.files = 5'000;
  config.content.categories = 64;
  Network net(config, line_graph(10), flooding_factory());
  for (NodeId n = 0; n < 10; ++n) {
    const auto& cats = net.peer(n).profile.categories();
    for (int i = 0; i < 20; ++i) {
      const workload::FileId target = net.sample_target(n);
      const workload::Category cat = net.catalogue().category_of(target);
      EXPECT_NE(std::find(cats.begin(), cats.end(), cat), cats.end());
    }
  }
}

TEST(Network, SetPolicySwapsBehaviour) {
  Network net(tiny_config(), line_graph(4), flooding_factory());
  net.set_policy(0, std::make_unique<KRandomWalkPolicy>(1));
  EXPECT_EQ(net.policy(0).name(), "k-random-walk(1)");
  EXPECT_EQ(net.policy(1).name(), "flooding");
}

// Learning hook plumbing: a recording policy observes reply paths.
class RecordingPolicy final : public RoutingPolicy {
 public:
  struct Observation {
    NodeId self, upstream, downstream;
  };
  static std::vector<Observation>& log() {
    static std::vector<Observation> observations;
    return observations;
  }
  [[nodiscard]] std::string name() const override { return "recording"; }
  bool route(const Query&, NodeId, NodeId from,
             std::span<const NodeId> neighbors, util::Rng&,
             std::vector<NodeId>& out) override {
    for (NodeId n : neighbors) {
      if (n != from) out.push_back(n);
    }
    return false;
  }
  void on_reply_path(const Query&, NodeId self, NodeId upstream,
                     NodeId downstream) override {
    log().push_back({self, upstream, downstream});
  }
};

TEST(Network, ReplyPathTeachesEveryIntermediateNode) {
  RecordingPolicy::log().clear();
  Network net(tiny_config(), line_graph(5),
              [](NodeId) { return std::make_unique<RecordingPolicy>(); });
  // Find a file held by node 4 and nobody closer to 0.
  workload::FileId target = workload::kNoFile;
  for (workload::FileId f : net.peer(4).store.files()) {
    bool closer = false;
    for (NodeId n = 0; n < 4; ++n) closer |= net.peer(n).store.has(f);
    if (!closer) {
      target = f;
      break;
    }
  }
  ASSERT_NE(target, workload::kNoFile);
  const SearchOutcome out = net.search(0, target, {.ttl = 6});
  ASSERT_TRUE(out.hit);
  EXPECT_EQ(out.hops_to_first_hit, 4u);
  // Reply path 4 -> 3 -> 2 -> 1 -> 0 teaches nodes 3, 2, 1 and the origin 0.
  ASSERT_EQ(RecordingPolicy::log().size(), 4u);
  const auto& obs = RecordingPolicy::log();
  // Node 3 learned {2} -> {4}: queries from 2 should go to 4.
  EXPECT_EQ(obs[0].self, 3u);
  EXPECT_EQ(obs[0].upstream, 2u);
  EXPECT_EQ(obs[0].downstream, 4u);
  // Origin learns {self} -> {1}.
  EXPECT_EQ(obs[3].self, 0u);
  EXPECT_EQ(obs[3].upstream, 0u);
  EXPECT_EQ(obs[3].downstream, 1u);
}

}  // namespace
}  // namespace aar::overlay
