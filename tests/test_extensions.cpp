// Tests for the Section VI future-work extensions: confidence-based pruning,
// query-dimension rules, and rule-driven topology adaptation.

#include <gtest/gtest.h>

#include <memory>

#include "core/dimensioned.hpp"
#include "core/ruleset.hpp"
#include "overlay/adaptation.hpp"
#include "overlay/assoc_policy.hpp"
#include "overlay/topology.hpp"

namespace aar {
namespace {

using core::HostId;
using trace::QueryReplyPair;

QueryReplyPair pair(trace::Guid guid, HostId source, HostId replier,
                    trace::QueryKey query = 0) {
  return {.time = 0.0,
          .guid = guid,
          .source_host = source,
          .replying_neighbor = replier,
          .query = query};
}

// --- confidence pruning -------------------------------------------------------

TEST(ConfidencePruning, DropsLowConfidenceRules) {
  std::vector<QueryReplyPair> pairs;
  trace::Guid guid = 0;
  // Host 1: 8 replies via 100, 2 via 101 -> confidences 0.8 and 0.2.
  for (int i = 0; i < 8; ++i) pairs.push_back(pair(++guid, 1, 100));
  for (int i = 0; i < 2; ++i) pairs.push_back(pair(++guid, 1, 101));
  const core::RuleSet strict = core::RuleSet::build(pairs, 1, 0.5);
  EXPECT_TRUE(strict.matches(1, 100));
  EXPECT_FALSE(strict.matches(1, 101));
  const core::RuleSet loose = core::RuleSet::build(pairs, 1, 0.1);
  EXPECT_TRUE(loose.matches(1, 101));
}

TEST(ConfidencePruning, ZeroThresholdIsNoop) {
  std::vector<QueryReplyPair> pairs{pair(1, 1, 100), pair(2, 1, 101)};
  const core::RuleSet a = core::RuleSet::build(pairs, 1, 0.0);
  const core::RuleSet b = core::RuleSet::build(pairs, 1);
  EXPECT_EQ(a.num_rules(), b.num_rules());
  EXPECT_EQ(a.num_rules(), 2u);
}

TEST(ConfidencePruning, ExactBoundaryIsKept) {
  std::vector<QueryReplyPair> pairs;
  trace::Guid guid = 0;
  for (int i = 0; i < 5; ++i) pairs.push_back(pair(++guid, 1, 100));
  for (int i = 0; i < 5; ++i) pairs.push_back(pair(++guid, 1, 101));
  // Both rules have confidence exactly 0.5.
  const core::RuleSet rules = core::RuleSet::build(pairs, 1, 0.5);
  EXPECT_EQ(rules.num_rules(), 2u);
}

TEST(ConfidencePruning, ComposesWithSupportPruning) {
  std::vector<QueryReplyPair> pairs;
  trace::Guid guid = 0;
  for (int i = 0; i < 3; ++i) pairs.push_back(pair(++guid, 1, 100));
  pairs.push_back(pair(++guid, 1, 101));
  // (1,101): support 1 < 2 and confidence 0.25 < 0.5 — both prune it.
  const core::RuleSet rules = core::RuleSet::build(pairs, 2, 0.5);
  EXPECT_EQ(rules.num_rules(), 1u);
  EXPECT_TRUE(rules.matches(1, 100));
}

// --- dimensioned (query-topic) rules ------------------------------------------

TEST(DimensionedRules, SeparatesTopicsUnderOneHost) {
  // Host 1 asks about topic 0 (answered by 100) and topic 1 (answered by
  // 200).  Plain host rules pick one consequent list for both; dimensioned
  // rules keep them apart.
  std::vector<QueryReplyPair> pairs;
  trace::Guid guid = 0;
  for (int i = 0; i < 6; ++i) pairs.push_back(pair(++guid, 1, 100, 42));
  for (int i = 0; i < 4; ++i) pairs.push_back(pair(++guid, 1, 200, 1042));
  const auto dim = core::category_dimension();  // query / 1000
  const auto rules = core::DimensionedRuleSet::build(pairs, 2, dim);
  EXPECT_TRUE(rules.matches(1, 0, 100));
  EXPECT_FALSE(rules.matches(1, 0, 200));
  EXPECT_TRUE(rules.matches(1, 1, 200));
  EXPECT_FALSE(rules.matches(1, 1, 100));
  EXPECT_EQ(rules.top_k(1, 0, 1), (std::vector<HostId>{100}));
  EXPECT_EQ(rules.top_k(1, 1, 1), (std::vector<HostId>{200}));
  EXPECT_EQ(rules.num_antecedents(), 2u);
}

TEST(DimensionedRules, SupportPruningPerDimension) {
  std::vector<QueryReplyPair> pairs;
  trace::Guid guid = 0;
  for (int i = 0; i < 5; ++i) pairs.push_back(pair(++guid, 1, 100, 0));
  pairs.push_back(pair(++guid, 1, 200, 1000));  // one observation only
  const auto rules =
      core::DimensionedRuleSet::build(pairs, 3, core::category_dimension());
  EXPECT_TRUE(rules.covers(1, 0));
  EXPECT_FALSE(rules.covers(1, 1));
}

TEST(DimensionedRules, EvaluateMatchesByDimension) {
  std::vector<QueryReplyPair> train;
  trace::Guid guid = 0;
  for (int i = 0; i < 4; ++i) train.push_back(pair(++guid, 1, 100, 0));
  for (int i = 0; i < 4; ++i) train.push_back(pair(++guid, 1, 200, 1000));
  const auto dim = core::category_dimension();
  const auto rules = core::DimensionedRuleSet::build(train, 2, dim);

  // Test: topic-0 query answered by the topic-1 neighbor -> covered, miss.
  const std::vector<QueryReplyPair> test{
      pair(100, 1, 100, 0),    // covered + success
      pair(101, 1, 200, 0),    // covered (dim 0 known) + miss (wrong replier)
      pair(102, 1, 200, 1000), // covered + success
      pair(103, 1, 100, 5000), // dim 5 unknown -> uncovered
  };
  const core::BlockMeasures m = core::evaluate_dimensioned(rules, test, dim);
  EXPECT_EQ(m.total_queries, 4u);
  EXPECT_EQ(m.covered, 3u);
  EXPECT_EQ(m.successful, 2u);
}

TEST(DimensionedRules, BeatsPlainRulesOnMultiInterestTraffic) {
  // Synthetic two-interest host where plain host rules cap success at the
  // dominant interest's share, but dimensioned rules track both.
  std::vector<QueryReplyPair> train;
  std::vector<QueryReplyPair> test;
  util::Rng rng(3);
  trace::Guid guid = 0;
  auto gen = [&](std::vector<QueryReplyPair>& out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      const bool topic_a = rng.chance(0.6);
      out.push_back(pair(++guid, 1, topic_a ? 100 : 200,
                         topic_a ? 0 : 1000));
    }
  };
  gen(train, 400);
  gen(test, 400);
  const auto dim = core::category_dimension();
  const auto dimensioned = core::DimensionedRuleSet::build(train, 10, dim);
  const core::RuleSet plain = core::RuleSet::build(train, 10);

  const double dim_success =
      core::evaluate_dimensioned(dimensioned, test, dim).success();
  // Plain top-1 forwarding would hit only the dominant topic; emulate with
  // evaluate_forwarding at k = 1.
  util::Rng rng2(4);
  const core::Forwarder top1({.k = 1});
  const double plain_success =
      core::evaluate_forwarding(plain, test, top1, rng2).success();
  EXPECT_GT(dim_success, 0.95);         // both topics routed correctly
  EXPECT_LT(plain_success, 0.75);       // capped near the 0.6 dominant share
}

TEST(DimensionedRules, EmptyIsEmpty) {
  const core::DimensionedRuleSet rules;
  EXPECT_TRUE(rules.empty());
  EXPECT_FALSE(rules.covers(1, 0));
  EXPECT_TRUE(rules.top_k(1, 0, 3).empty());
}

// --- topology adaptation -------------------------------------------------------

overlay::AssociationRoutingPolicy* teach(overlay::Network& net,
                                         overlay::NodeId node,
                                         overlay::NodeId upstream,
                                         overlay::NodeId downstream) {
  auto* policy =
      dynamic_cast<overlay::AssociationRoutingPolicy*>(&net.policy(node));
  EXPECT_NE(policy, nullptr);
  overlay::Query query;
  for (trace::Guid g = 1; g <= 8; ++g) {
    query.guid = 1'000 * node + g;
    policy->on_reply_path(query, node, upstream, downstream);
  }
  return policy;
}

overlay::NetworkConfig tiny_net_config() {
  overlay::NetworkConfig config;
  config.seed = 5;
  config.files_per_node = 4;
  config.content.files = 100;
  config.content.categories = 4;
  return config;
}

TEST(TopologyAdaptation, AddsTheThirdNodeShortcut) {
  // Line 0 - 1 - 2 - 3.  Teach: node 0 routes its own queries to 1; node 1
  // routes queries from 0 to 2.  Adaptation should add edge 0 - 2.
  overlay::Graph line(4);
  line.add_edge(0, 1);
  line.add_edge(1, 2);
  line.add_edge(2, 3);
  overlay::Network net(tiny_net_config(), std::move(line), [](overlay::NodeId) {
    return std::make_unique<overlay::AssociationRoutingPolicy>(
        overlay::AssociationPolicyConfig{.rebuild_every = 4, .min_support = 2});
  });
  teach(net, 0, 0, 1);  // own queries -> neighbor 1
  teach(net, 1, 0, 2);  // queries from 0 -> neighbor 2

  ASSERT_FALSE(net.graph().has_edge(0, 2));
  const overlay::AdaptationReport report = overlay::adapt_topology(net);
  EXPECT_EQ(report.adopters, 4u);
  EXPECT_GE(report.asked, 1u);
  EXPECT_EQ(report.edges_added, 1u);
  EXPECT_TRUE(net.graph().has_edge(0, 2));
}

TEST(TopologyAdaptation, ExistingLinksAreCountedNotDuplicated) {
  overlay::Graph triangle(3);
  triangle.add_edge(0, 1);
  triangle.add_edge(1, 2);
  triangle.add_edge(0, 2);
  overlay::Network net(tiny_net_config(), std::move(triangle),
                       [](overlay::NodeId) {
                         return std::make_unique<
                             overlay::AssociationRoutingPolicy>(
                             overlay::AssociationPolicyConfig{
                                 .rebuild_every = 4, .min_support = 2});
                       });
  teach(net, 0, 0, 1);
  teach(net, 1, 0, 2);
  const std::size_t edges_before = net.graph().num_edges();
  const overlay::AdaptationReport report = overlay::adapt_topology(net);
  EXPECT_EQ(report.edges_added, 0u);
  EXPECT_EQ(report.already_linked, 1u);
  EXPECT_EQ(net.graph().num_edges(), edges_before);
}

TEST(TopologyAdaptation, NonAdoptersAreSkipped) {
  overlay::Graph line(3);
  line.add_edge(0, 1);
  line.add_edge(1, 2);
  overlay::Network net(tiny_net_config(), std::move(line), [](overlay::NodeId) {
    return std::make_unique<overlay::FloodingPolicy>();
  });
  const overlay::AdaptationReport report = overlay::adapt_topology(net);
  EXPECT_EQ(report.adopters, 0u);
  EXPECT_EQ(report.edges_added, 0u);
}

TEST(TopologyAdaptation, RespectsPerNodeCap) {
  // Star of rules: node 0 has own-query rules to 1 and 2; both name distinct
  // third nodes — with cap 1 only one link is added.
  overlay::Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(1, 3);
  g.add_edge(2, 4);
  overlay::Network net(tiny_net_config(), std::move(g), [](overlay::NodeId) {
    return std::make_unique<overlay::AssociationRoutingPolicy>(
        overlay::AssociationPolicyConfig{.rebuild_every = 4, .min_support = 2});
  });
  teach(net, 0, 0, 1);
  teach(net, 0, 0, 2);
  teach(net, 1, 0, 3);
  teach(net, 2, 0, 4);
  const overlay::AdaptationReport report =
      overlay::adapt_topology(net, /*max_new_links_per_node=*/1);
  EXPECT_EQ(report.edges_added, 1u);
}

}  // namespace
}  // namespace aar
