#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace aar::util {
namespace {

TEST(Running, EmptyIsZeroed) {
  Running r;
  EXPECT_EQ(r.count(), 0u);
  EXPECT_EQ(r.mean(), 0.0);
  EXPECT_EQ(r.variance(), 0.0);
  EXPECT_EQ(r.min(), 0.0);
  EXPECT_EQ(r.max(), 0.0);
}

TEST(Running, SingleValue) {
  Running r;
  r.add(5.0);
  EXPECT_EQ(r.count(), 1u);
  EXPECT_EQ(r.mean(), 5.0);
  EXPECT_EQ(r.variance(), 0.0);
  EXPECT_EQ(r.min(), 5.0);
  EXPECT_EQ(r.max(), 5.0);
}

TEST(Running, MatchesClosedForm) {
  Running r;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  for (double x : xs) r.add(x);
  EXPECT_DOUBLE_EQ(r.mean(), 3.0);
  EXPECT_DOUBLE_EQ(r.variance(), 2.5);  // sample variance of 1..5
  EXPECT_DOUBLE_EQ(r.stddev(), std::sqrt(2.5));
  EXPECT_EQ(r.min(), 1.0);
  EXPECT_EQ(r.max(), 5.0);
}

TEST(Running, StableUnderLargeOffset) {
  Running r;
  const double offset = 1e9;
  for (double x : {1.0, 2.0, 3.0}) r.add(offset + x);
  EXPECT_NEAR(r.variance(), 1.0, 1e-4);
}

TEST(Running, MergeEqualsCombinedStream) {
  Running all;
  Running left;
  Running right;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10.0;
    all.add(x);
    (i < 20 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(Running, MergeWithEmptyIsIdentity) {
  Running a;
  a.add(1.0);
  a.add(3.0);
  Running empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Series, TailMean) {
  Series s;
  for (double x : {1.0, 2.0, 3.0, 4.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.tail_mean(2), 3.5);
  EXPECT_DOUBLE_EQ(s.tail_mean(4), 2.5);
  EXPECT_DOUBLE_EQ(s.tail_mean(100), 2.5);  // clamps to available
}

TEST(Series, TailMeanEmpty) {
  Series s;
  EXPECT_EQ(s.tail_mean(5), 0.0);
}

TEST(Series, FirstBelow) {
  Series s;
  for (double x : {0.9, 0.8, 0.4, 0.7, 0.1}) s.add(x);
  EXPECT_EQ(s.first_below(0.5), 2u);
  EXPECT_EQ(s.first_below(0.05), s.size());  // never below
}

TEST(Series, PercentileInterpolates) {
  Series s;
  for (double x : {10.0, 20.0, 30.0, 40.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 40.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 25.0);
}

TEST(Series, SummaryTracksRunning) {
  Series s("x");
  for (double x : {2.0, 4.0, 6.0}) s.add(x);
  EXPECT_EQ(s.name(), "x");
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 6.0);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], 4.0);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.add(-1.0);   // clamps into bin 0
  h.add(0.5);    // bin 0
  h.add(5.0);    // bin 2
  h.add(100.0);  // clamps into bin 4
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(4), 1u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 10.0);
}

TEST(Histogram, CdfIsMonotoneReachingOne) {
  Histogram h(0.0, 1.0, 4);
  for (double x : {0.1, 0.3, 0.6, 0.9}) h.add(x);
  double prev = 0.0;
  for (std::size_t b = 0; b < h.bins(); ++b) {
    EXPECT_GE(h.cdf(b), prev);
    prev = h.cdf(b);
  }
  EXPECT_DOUBLE_EQ(h.cdf(h.bins() - 1), 1.0);
}

TEST(Histogram, EmptyCdfIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_EQ(h.cdf(1), 0.0);
}

// Regression (ISSUE 2): a NaN sample made the float->ptrdiff_t cast in add()
// undefined and clamp's comparisons unspecified; a huge finite sample
// likewise overflowed the integer cast.  NaN must be dropped, everything
// else must clamp into the edge bins — in every build type, UBSan-clean.
TEST(Histogram, NonFiniteAndHugeSamplesAreSafe) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 0u);  // dropped, not binned

  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  h.add(1e300);   // finite, but bin index overflows any integer type
  h.add(-1e300);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);

  h.add(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(h.total(), 4u);
}

}  // namespace
}  // namespace aar::util
