// aar::lsm crash-recovery battery (docs/STORAGE.md "Recovery contract").
//
//   * Kill-point matrix — a fault hook throws CrashPoint at every named
//     durability boundary (mid-block write, sealed-run-before-manifest,
//     mid-compaction, both halves of the manifest rename dance, and the
//     post-install cleanup window).  After each simulated crash the
//     directory is reopened the way a real restart would, and the
//     recovered contents must equal an exact committed prefix: the disk
//     state before the interrupted operation, or — once the new manifest
//     is installed — after it.  Crashed compactions never change the
//     logical contents at all (counts merge associatively).
//   * Torn-write / corruption corpus — truncations at every suffix length
//     and single-bit flips across run files and the manifest must never
//     abort an open: the CRC layers reject the damage and the manifest
//     ladder (MANIFEST -> MANIFEST.prev -> empty) steps down to the
//     newest rung whose runs all verify.
//   * Determinism — the same seed and the same kill point recover to
//     byte-identical manifests and dumps across independent runs (the CI
//     gate relies on this).
//
// Every simulated crash leaves the Store object poisoned mid-operation, so
// the object is always discarded after a CrashPoint and a fresh Store is
// opened on the directory — exactly the documented contract.

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "lsm/fault.hpp"
#include "lsm/format.hpp"
#include "lsm/store.hpp"
#include "test_tmp.hpp"
#include "util/rng.hpp"

namespace aar::lsm {
namespace {

namespace fs = std::filesystem;
using aar::testing::ScopedTempDir;

/// Arm the process-wide hook to throw at the n-th occurrence of `point`.
class ArmedCrash {
 public:
  ArmedCrash(std::string point, int fire_at = 1) {
    set_fault_hook([point = std::move(point), fire_at,
                    seen = 0](std::string_view at) mutable {
      if (at != point) return;
      if (++seen == fire_at) {
        throw CrashPoint("injected crash at " + std::string(at));
      }
    });
  }
  ~ArmedCrash() { set_fault_hook(nullptr); }
  ArmedCrash(const ArmedCrash&) = delete;
  ArmedCrash& operator=(const ArmedCrash&) = delete;
};

/// Shadow of the LOGICAL durable contents: what a reopen must serve.
using Counts = std::map<Key, std::int64_t>;

std::string dump_of(const Counts& counts) {
  std::string out;
  for (const auto& [key, count] : counts) {
    if (count == 0) continue;
    out += std::to_string(key_antecedent(key));
    out += ',';
    out += std::to_string(key_consequent(key));
    out += ',';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

void merge_into(Counts& into, const Counts& add) {
  for (const auto& [key, count] : add) into[key] += count;
}

/// Deterministic workload batch: `n` adds applied to both the store's
/// memtable and a batch-local shadow.
Counts apply_batch(Store& store, util::Rng& rng, std::size_t n) {
  Counts batch;
  for (std::size_t i = 0; i < n; ++i) {
    const auto a = static_cast<HostId>(rng.below(12));
    const auto c = static_cast<HostId>(rng.below(12));
    const std::int64_t delta =
        rng.below(5) == 0 ? -1 : 1 + static_cast<std::int64_t>(rng.below(3));
    store.add(a, c, delta);
    batch[make_key(a, c)] += delta;
  }
  return batch;
}

// Small budgets so flushes write several blocks (multiple run.block hits)
// and compaction has real work.
StoreOptions tight_options() {
  StoreOptions options;
  options.memtable_bytes = 64u << 10;  // manual flushes drive the schedule
  options.block_bytes = 128;
  options.level_fanout = 2;
  return options;
}

// --- kill-point matrix: flush ---------------------------------------------

struct FlushCase {
  const char* point;
  int fire_at;
  bool durable_after;  ///< crash lands after the manifest install
};

class LsmKillPointFlush : public ::testing::TestWithParam<FlushCase> {};

TEST_P(LsmKillPointFlush, RecoversToACommittedPrefix) {
  const FlushCase& kill = GetParam();
  ScopedTempDir tmp("aar_lsm_kill");
  const std::string dir = tmp.path("db");
  util::Rng rng(4242);

  // Commit a baseline: one clean flush, fully durable.
  Counts durable;
  {
    Store store(dir, tight_options());
    merge_into(durable, apply_batch(store, rng, 300));
    store.flush();
  }

  // Second batch dies mid-flush at the parameterized point.
  Counts batch;
  {
    Store store(dir, tight_options());
    batch = apply_batch(store, rng, 300);
    ArmedCrash crash(kill.point, kill.fire_at);
    EXPECT_THROW(store.flush(), CrashPoint);
    // Store is poisoned mid-operation: discard without further use.
  }

  Counts expected = durable;
  if (kill.durable_after) merge_into(expected, batch);
  Store recovered(dir, tight_options());
  EXPECT_EQ(recovered.dump_text(), dump_of(expected))
      << "crash at " << kill.point << " #" << kill.fire_at;

  // The recovered store must stay fully usable: write + flush + compact.
  merge_into(expected, apply_batch(recovered, rng, 100));
  recovered.maintain();
  EXPECT_EQ(recovered.dump_text(), dump_of(expected));
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, LsmKillPointFlush,
    ::testing::Values(
        // Mid-block write: the run is torn, nothing committed.
        FlushCase{"run.block", 1, false},
        FlushCase{"run.block", 2, false},
        // Run sealed but manifest untouched: the run is an orphan.
        FlushCase{"run.sealed", 1, false},
        // Tmp manifest written, no rename: still the old manifest.
        FlushCase{"manifest.tmp", 1, false},
        // Mid-rename window: MANIFEST is gone, .prev must serve.
        FlushCase{"manifest.retired", 1, false},
        // Installed: the flush is durable even though cleanup never ran.
        FlushCase{"manifest.installed", 1, true}),
    [](const ::testing::TestParamInfo<FlushCase>& labeled) {
      std::string name = labeled.param.point;
      for (char& c : name) {
        if (c == '.') c = '_';
      }
      return name + "_hit" + std::to_string(labeled.param.fire_at);
    });

// --- kill-point matrix: compaction ----------------------------------------

class LsmKillPointCompaction
    : public ::testing::TestWithParam<const char*> {};

TEST_P(LsmKillPointCompaction, NeverChangesLogicalContents) {
  ScopedTempDir tmp("aar_lsm_killc");
  const std::string dir = tmp.path("db");
  util::Rng rng(777);

  // Two flushed runs at level 0 (fanout 2): compaction has work to do.
  Counts durable;
  {
    Store store(dir, tight_options());
    merge_into(durable, apply_batch(store, rng, 250));
    store.flush();
    merge_into(durable, apply_batch(store, rng, 250));
    store.flush();

    ArmedCrash crash(GetParam());
    EXPECT_THROW(store.compact(), CrashPoint);
  }

  // Whatever the crash tore, a compaction is a pure re-arrangement:
  // recovered contents equal the pre-compaction contents, on every point.
  Store recovered(dir, tight_options());
  EXPECT_EQ(recovered.dump_text(), dump_of(durable)) << GetParam();

  // And a rerun of the interrupted compaction completes cleanly.  (After a
  // crash at manifest.installed the compaction already committed, so this
  // may be a no-op — the dump is the contract either way.)
  recovered.maintain();
  EXPECT_EQ(recovered.dump_text(), dump_of(durable));
}

INSTANTIATE_TEST_SUITE_P(Matrix, LsmKillPointCompaction,
                         ::testing::Values("compaction.block",
                                           "compaction.sealed",
                                           "manifest.tmp", "manifest.retired",
                                           "manifest.installed"),
                         [](const ::testing::TestParamInfo<const char*>& labeled) {
                           std::string name = labeled.param;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

// --- torn-write / corruption corpus ---------------------------------------

/// Fill a store with two committed flushes; returns the expected dump.
std::string seed_store(const std::string& dir) {
  util::Rng rng(1234);
  Counts durable;
  Store store(dir, tight_options());
  merge_into(durable, apply_batch(store, rng, 300));
  store.flush();
  merge_into(durable, apply_batch(store, rng, 300));
  store.flush();
  return dump_of(durable);
}

std::vector<std::string> run_files(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (name.starts_with("run-")) files.push_back(entry.path().string());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(LsmCorruption, TruncatedRunFilesNeverAbortTheOpen) {
  ScopedTempDir tmp("aar_lsm_trunc");
  const std::string dir = tmp.path("db");
  const std::string full = seed_store(dir);
  const std::vector<std::string> files = run_files(dir);
  ASSERT_FALSE(files.empty());
  const auto size = static_cast<std::size_t>(fs::file_size(files.back()));

  // Chop the newest run at a spread of lengths, including 0 and size-1.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{1}, size / 4, size / 2, size - 9,
        size - 1}) {
    fs::resize_file(files.back(), keep);
    {
      // Must not throw: the ladder steps down past the torn run.
      Store store(dir, tight_options());
      EXPECT_NE(store.stats().recovered_from, "MANIFEST")
          << "torn run at " << keep << " bytes accepted";
      // Whatever rung it landed on is a committed prefix — and the store
      // still accepts writes.
      store.add(1, 2, 3);
      store.flush();
    }
    // Restore the full state (and drop the reinstalled manifest pair) for
    // the next truncation length.
    fs::remove_all(dir);
    fs::create_directories(dir);
    [[maybe_unused]] const std::string again = seed_store(dir);
    const std::vector<std::string> fresh = run_files(dir);
    ASSERT_FALSE(fresh.empty());
  }
}

TEST(LsmCorruption, BitFlippedRunFallsBackToLastGoodManifest) {
  ScopedTempDir tmp("aar_lsm_flip");
  const std::string dir = tmp.path("db");
  const std::string full = seed_store(dir);
  const std::vector<std::string> files = run_files(dir);
  ASSERT_FALSE(files.empty());

  // Flip one bit in the middle of the newest run's data area.
  const std::string victim = files.back();
  const auto size = static_cast<std::size_t>(fs::file_size(victim));
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x01);
    f.seekp(static_cast<std::streamoff>(size / 2));
    f.write(&byte, 1);
  }
  Store store(dir, tight_options());  // verify_on_open spots the flip
  EXPECT_NE(store.stats().recovered_from, "MANIFEST");
  EXPECT_NE(store.dump_text(), full);  // the newest flush fell away...
  const std::int64_t before = store.get_count(9, 9);  // surviving rung's sum
  store.add(9, 9, 9);  // ...but the store still serves
  store.flush();
  EXPECT_EQ(store.get_count(9, 9), before + 9);
}

TEST(LsmCorruption, MangledManifestStepsDownTheLadder) {
  ScopedTempDir tmp("aar_lsm_manifest");
  const std::string dir = tmp.path("db");
  const std::string full = seed_store(dir);

  // Corrupt MANIFEST (CRC line intact but content flipped).
  {
    std::fstream f(dir + "/MANIFEST",
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.write("X", 1);
  }
  {
    Store store(dir, tight_options());
    EXPECT_EQ(store.stats().recovered_from, "MANIFEST.prev");
  }

  // Now mangle both rungs: recovery lands on the empty store, not an abort.
  {
    std::ofstream(dir + "/MANIFEST", std::ios::trunc) << "garbage";
    std::ofstream(dir + "/MANIFEST.prev", std::ios::trunc) << "garbage";
  }
  Store store(dir, tight_options());
  EXPECT_EQ(store.stats().recovered_from, "empty");
  EXPECT_EQ(store.dump_text(), "");
  store.add(1, 1, 1);
  store.flush();
  EXPECT_EQ(store.get_count(1, 1), 1);
}

// --- determinism gate -----------------------------------------------------

/// One full crash-and-recover run: returns (manifest bytes, dump bytes)
/// after recovery.  Everything is seeded, so two invocations must match.
std::pair<std::string, std::string> crashed_run(const std::string& dir,
                                                const char* point) {
  util::Rng rng(20'26);
  {
    Store store(dir, tight_options());
    (void)apply_batch(store, rng, 300);
    store.flush();
    (void)apply_batch(store, rng, 300);
    ArmedCrash crash(point);
    try {
      store.flush();
      store.compact();
    } catch (const CrashPoint&) {
    }
  }
  Store recovered(dir, tight_options());
  return {recovered.manifest_bytes(), recovered.dump_text()};
}

TEST(LsmDeterminism, SameSeedSameKillPointRecoverIdentically) {
  for (const char* point :
       {"run.block", "manifest.retired", "compaction.sealed"}) {
    ScopedTempDir tmp("aar_lsm_det");
    const auto a = crashed_run(tmp.path("a"), point);
    const auto b = crashed_run(tmp.path("b"), point);
    EXPECT_EQ(a.first, b.first) << "manifest bytes diverged at " << point;
    EXPECT_EQ(a.second, b.second) << "dump bytes diverged at " << point;
  }
}

}  // namespace
}  // namespace aar::lsm
