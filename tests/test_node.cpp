// aar_node daemon tests (docs/NODE.md): the retry-ladder schedule and its
// per-connection jitter seeding, the in-process loopback end-to-end loop
// (serve + replay on real sockets, rules mined from relayed traffic,
// rule-routed hits), shard-count invariance of stats and mined rule bytes
// under a lockstep driver, disconnect purges across shards, the plain-text
// admin endpoint, the send-stall ladder against a peer that stops reading,
// the loopback-only default bind, and the aar_node CLI's flag validation
// (driven through the real binary).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ruleset.hpp"
#include "gnutella/codec.hpp"
#include "node/daemon.hpp"
#include "node/net.hpp"
#include "node/replay.hpp"
#include "util/rng.hpp"

namespace aar::node {
namespace {

// --- retry ladder schedule -----------------------------------------------

TEST(RetryLadder, DelaysDoublePerAttempt) {
  const RetryLadder ladder{.retries = 3, .backoff_ms = 10, .jitter_ms = 0};
  util::Rng rng(1);
  EXPECT_EQ(ladder.delay_ms(0, rng), 10u);
  EXPECT_EQ(ladder.delay_ms(1, rng), 20u);
  EXPECT_EQ(ladder.delay_ms(2, rng), 40u);
  EXPECT_FALSE(ladder.exhausted(2));
  EXPECT_TRUE(ladder.exhausted(3));
}

TEST(RetryLadder, JitterStaysInBounds) {
  const RetryLadder ladder{.retries = 2, .backoff_ms = 8, .jitter_ms = 5};
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t delay = ladder.delay_ms(1, rng);
    EXPECT_GE(delay, 16u);
    EXPECT_LE(delay, 21u);
  }
}

TEST(RetryLadder, ZeroBackoffStillWaits) {
  const RetryLadder ladder{.retries = 1, .backoff_ms = 0, .jitter_ms = 0};
  util::Rng rng(1);
  EXPECT_GE(ladder.delay_ms(0, rng), 1u);  // clamped: a zero wait would spin
}

TEST(RetryLadder, HugeAttemptDoesNotOverflow) {
  const RetryLadder ladder{.retries = 100, .backoff_ms = 1000, .jitter_ms = 0};
  util::Rng rng(1);
  EXPECT_LE(ladder.delay_ms(99, rng), 60u * 1000u);  // capped at a minute
}

// --- per-connection jitter seeding ---------------------------------------

std::vector<std::uint32_t> ladder_schedule(std::uint64_t daemon_seed,
                                           NeighborId id) {
  const RetryLadder ladder{.retries = 6, .backoff_ms = 10, .jitter_ms = 100};
  util::Rng rng(jitter_seed(daemon_seed, id));
  std::vector<std::uint32_t> delays;
  for (std::uint32_t attempt = 0; attempt < ladder.retries; ++attempt) {
    delays.push_back(ladder.delay_ms(attempt, rng));
  }
  return delays;
}

TEST(RetryLadder, JitterScheduleIsAPureFunctionOfSeedAndConnectionId) {
  // The old daemon drew jitter from one shared rng, so every stall
  // perturbed every later connection's schedule; per-connection seeding
  // makes the schedule reproducible from (daemon seed, connection id)
  // alone, whatever else the daemon is doing.
  EXPECT_EQ(ladder_schedule(7, 3), ladder_schedule(7, 3));
  EXPECT_NE(ladder_schedule(7, 3), ladder_schedule(7, 4));
  EXPECT_NE(ladder_schedule(7, 3), ladder_schedule(8, 3));
}

TEST(RetryLadder, JitterSeedSpreadsAdjacentIds) {
  // splitmix64 mixing: adjacent connection ids must not land on nearby
  // rng states (a plain seed+id would).
  const std::uint64_t a = jitter_seed(7, 1);
  const std::uint64_t b = jitter_seed(7, 2);
  EXPECT_NE(a, b);
  EXPECT_GT(a ^ b, 0xFFFFull);  // differ in more than the low bits
}

// --- in-process loopback end to end --------------------------------------

struct DaemonHarness {
  explicit DaemonHarness(NodeConfig config = {})
      : daemon(config), server([this] { daemon.run(); }) {}
  ~DaemonHarness() {
    daemon.stop();
    if (server.joinable()) server.join();
  }
  Daemon daemon;
  std::thread server;
};

std::string admin_request(std::uint16_t port, const std::string& command) {
  Fd fd = connect_tcp("127.0.0.1", port);
  const std::string line = command + "\n";
  std::span<const std::uint8_t> remaining(
      reinterpret_cast<const std::uint8_t*>(line.data()), line.size());
  while (!remaining.empty()) {
    const IoResult r = write_some(fd.get(), remaining);
    if (r.status == IoStatus::closed) return {};
    remaining = remaining.subspan(r.n);
  }
  std::string reply;
  std::vector<std::uint8_t> buffer(16 * 1024);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const IoResult r = read_some(fd.get(), buffer);
    if (r.status == IoStatus::closed) break;
    if (r.status == IoStatus::would_block) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    reply.append(reinterpret_cast<const char*>(buffer.data()), r.n);
  }
  return reply;
}

TEST(NodeDaemon, LoopbackReplayMinesRulesAndRoutesHits) {
  NodeConfig config;
  config.min_support = 2;
  config.rebuild_every = 16;
  DaemonHarness harness(config);

  ReplayConfig load;
  load.port = harness.daemon.port();
  load.connections = 4;
  load.pairs = 1500;
  load.hosts = 16;
  load.hit_lag = 8;
  load.rate = 20'000.0;  // paced so hits land after their queries
  load.drain_ms = 300;
  load.seed = 3;
  const ReplayStats replay = run_replay(load);

  // The relay worked end to end: hits were routed back along the reverse
  // path to the connection that issued the query...
  EXPECT_GT(replay.matched_hits, 0u);
  // ...and every relayed frame carried the rewritten header (the TTL/hops
  // regression, verified on real wire bytes).
  EXPECT_EQ(replay.ttl_violations, 0u);
  EXPECT_EQ(replay.malformed, 0u);

  harness.daemon.stop();
  harness.server.join();
  const NodeStats& stats = harness.daemon.stats();
  EXPECT_EQ(stats.queries_in, 1500u);
  EXPECT_EQ(stats.hits_in, 1500u);
  // Observed pairs fed the miner, snapshots produced rules, and live
  // queries were routed by them — with hits to show for it.
  EXPECT_GT(stats.pairs_mined, 0u);
  EXPECT_GT(stats.snapshots, 0u);
  EXPECT_GT(stats.rule_routed, 0u);
  EXPECT_GT(stats.routed_hits, 0u);
  EXPECT_GT(stats.routed_hit_fraction(), 0.0);
}

TEST(NodeDaemon, AdminEndpointServesStatsMetricsHealth) {
  NodeConfig config;
  DaemonHarness harness(config);

  ReplayConfig load;
  load.port = harness.daemon.port();
  load.connections = 2;
  load.pairs = 50;
  load.hit_lag = 4;
  load.rate = 10'000.0;
  load.drain_ms = 100;
  const ReplayStats replay = run_replay(load);
  ASSERT_GT(replay.frames_received, 0u);

  EXPECT_EQ(admin_request(harness.daemon.admin_port(), "health"), "ok\n");

  const std::string stats =
      admin_request(harness.daemon.admin_port(), "stats");
  EXPECT_NE(stats.find("node.messages_in 100"), std::string::npos) << stats;
  EXPECT_NE(stats.find("node.routed_hit_fraction"), std::string::npos);
  EXPECT_NE(stats.find("end\n"), std::string::npos);

  const std::string metrics =
      admin_request(harness.daemon.admin_port(), "metrics");
  EXPECT_NE(metrics.find("aar.metrics.v1"), std::string::npos);

  const std::string unknown =
      admin_request(harness.daemon.admin_port(), "frobnicate");
  EXPECT_NE(unknown.find("err unknown command"), std::string::npos);
}

TEST(NodeDaemon, AdminShutdownStopsTheLoop) {
  DaemonHarness harness;
  EXPECT_EQ(admin_request(harness.daemon.admin_port(), "shutdown"), "ok\n");
  harness.server.join();  // run() must return on its own
  EXPECT_GE(harness.daemon.stats().admin_requests, 1u);
}

TEST(NodeDaemon, SendStallLadderDisconnectsDeadPeer) {
  NodeConfig config;
  config.retries = 2;
  config.backoff_ms = 5;
  // Generous stall budget so the ladder dies by rung exhaustion, not the
  // wall clock: under TSan the shard can spend > budget relaying the 16 MiB
  // backlog before the first retry timer ever fires, which would jump
  // straight to send_timeouts with send_retries still 0.
  config.send_timeout_ms = 60'000;
  config.send_buffer = 4096;  // shrink the kernel's slack
  DaemonHarness harness(config);

  // Peer A sends large queries; peer B never reads its socket, so the
  // daemon's relays to B stall, the ladder retries, and B is declared dead.
  Fd sender = connect_tcp("127.0.0.1", harness.daemon.port());
  Fd dead = connect_tcp("127.0.0.1", harness.daemon.port());

  const std::string big(32 * 1024, 'q');
  std::vector<std::uint8_t> frame;
  for (std::uint64_t i = 0; i < 512; ++i) {
    frame = gnutella::serialize(
        gnutella::make_query(gnutella::make_wire_guid(i + 1), 4, 0, big));
    std::span<const std::uint8_t> remaining(frame.data(), frame.size());
    bool alive = true;
    while (!remaining.empty() && alive) {
      const IoResult r = write_some(sender.get(), remaining);
      switch (r.status) {
        case IoStatus::closed:
          alive = false;
          break;
        case IoStatus::would_block:
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          break;
        case IoStatus::ok:
          remaining = remaining.subspan(r.n);
          break;
      }
    }
  }

  // Wait for the ladder to walk its rungs and give up on B.  The budget is
  // generous: a cold first run under ASan on one core can take several
  // seconds before the stall clock even starts.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string stats =
        admin_request(harness.daemon.admin_port(), "stats");
    if (stats.find("node.send_timeouts 0\n") == std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  harness.daemon.stop();
  harness.server.join();
  const NodeStats& stats = harness.daemon.stats();
  EXPECT_GE(stats.send_retries, 1u);
  EXPECT_GE(stats.send_timeouts, 1u);
  EXPECT_GE(stats.disconnects, 1u);
}

// --- loopback-only default bind ------------------------------------------

TEST(NodeDaemon, DefaultConfigurationRefusesNonLoopbackBind) {
  NodeConfig config;
  config.bind_addr = "0.0.0.0";  // no allow_nonloopback opt-in
  try {
    Daemon daemon(config);
    FAIL() << "constructing a non-loopback daemon without the opt-in must "
              "throw";
  } catch (const std::invalid_argument& error) {
    // The refusal must name the flag that opts in.
    EXPECT_NE(std::string(error.what()).find("--bind"), std::string::npos)
        << error.what();
  }
}

TEST(NodeDaemon, ExplicitOptInAllowsNonLoopbackBind) {
  NodeConfig config;
  config.bind_addr = "0.0.0.0";
  config.allow_nonloopback = true;
  EXPECT_NO_THROW({ Daemon daemon(config); });
}

// --- shard-count invariance (lockstep driver) ----------------------------

/// Drives a daemon frame by frame over real loopback sockets, waiting for
/// each frame to be fully processed (Daemon::messages_processed) before
/// sending the next — the in-process analogue of `aar_node replay
/// --lockstep 1`.  Serializing the processing order makes stats and mined
/// rule bytes comparable across shard counts.
struct LockstepDriver {
  explicit LockstepDriver(Daemon& daemon, std::size_t connections)
      : daemon(daemon) {
    for (std::size_t i = 0; i < connections; ++i) {
      conns.push_back(connect_tcp("127.0.0.1", daemon.port()));
    }
    // connect_tcp returns when the kernel completes the handshake, which is
    // before the control thread accepts and registers the peer; a frame sent
    // now could flood to fewer targets than the settled roster.  Wait for
    // every peer to be accepted (the roster add happens-before the accepted
    // bump) so relay decisions see the same peer list on every run.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (daemon.stats().accepted < connections) {
      if (std::chrono::steady_clock::now() >= deadline) {
        ADD_FAILURE() << "peers never accepted";
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }

  void send(std::size_t conn, const std::vector<std::uint8_t>& bytes) {
    const std::uint64_t target = daemon.messages_processed() + 1;
    std::span<const std::uint8_t> remaining(bytes.data(), bytes.size());
    while (!remaining.empty()) {
      const IoResult r = write_some(conns[conn].get(), remaining);
      ASSERT_NE(r.status, IoStatus::closed);
      if (r.status == IoStatus::would_block) {
        drain();
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        continue;
      }
      remaining = remaining.subspan(r.n);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (daemon.messages_processed() < target) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline)
          << "frame never processed";
      drain();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }

  /// Discard whatever the daemon relayed back so its sends never stall.
  void drain() {
    std::vector<std::uint8_t> buffer(16 * 1024);
    for (Fd& fd : conns) {
      if (!fd.valid()) continue;
      for (;;) {
        const IoResult r = read_some(fd.get(), buffer);
        if (r.status != IoStatus::ok || r.n == 0) break;
      }
    }
  }

  Daemon& daemon;
  std::vector<Fd> conns;
};

/// The synthetic association workload: host h's queries arrive from conn
/// h % C and its hits always arrive through conn (h % C + 1) % C, so the
/// miner has stable (query key -> replying neighbor) structure to find.
void drive_association_workload(LockstepDriver& driver, std::size_t pairs,
                                std::uint32_t hosts, std::size_t conns,
                                std::size_t lag) {
  std::size_t next_hit = 0;
  const auto send_query = [&](std::size_t i) {
    const std::uint32_t h = static_cast<std::uint32_t>(i) % hosts;
    char search[16];
    std::snprintf(search, sizeof search, "q%u", h);
    driver.send(h % conns,
                gnutella::serialize(gnutella::make_query(
                    gnutella::make_wire_guid(1000 + i), 4, 0, search)));
  };
  const auto send_hit = [&](std::size_t i) {
    const std::uint32_t h = static_cast<std::uint32_t>(i) % hosts;
    char file[16];
    std::snprintf(file, sizeof file, "f%u", h);
    driver.send((h % conns + 1) % conns,
                gnutella::serialize(gnutella::make_query_hit(
                    gnutella::make_wire_guid(1000 + i), 4,
                    gnutella::make_wire_guid(h),
                    {gnutella::HitResult{.file_index = h,
                                         .file_size = 1,
                                         .file_name = file}})));
  };
  for (std::size_t i = 0; i < pairs; ++i) {
    send_query(i);
    while (next_hit + lag <= i) send_hit(next_hit++);
  }
  while (next_hit < pairs) send_hit(next_hit++);
}

std::string describe(const NodeStats& stats) {
  std::ostringstream out;
  out << stats.accepted << ' ' << stats.disconnects << ' ' << stats.bytes_in
      << ' ' << stats.bytes_out << ' ' << stats.messages_in << ' '
      << stats.malformed_frames << ' ' << stats.queries_in << ' '
      << stats.hits_in << ' ' << stats.pings_in << ' ' << stats.dropped << ' '
      << stats.queries_relayed << ' ' << stats.hits_relayed << ' '
      << stats.rule_routed << ' ' << stats.flooded << ' ' << stats.routed_hits
      << ' ' << stats.pairs_mined << ' ' << stats.snapshots << ' '
      << stats.send_retries << ' ' << stats.send_timeouts << ' '
      << stats.degraded_floods;
  return out.str();
}

/// Wait until the aggregated stats stop moving (trailing cross-shard relay
/// deliveries land asynchronously even after every frame is processed).
std::string settled_stats(Daemon& daemon) {
  std::string last = describe(daemon.stats());
  int stable = 0;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::string now = describe(daemon.stats());
    if (now == last) {
      // Three quiet reads in a row: trailing deliveries can straggle when
      // the host is oversubscribed (ctest -j on one core).
      if (++stable >= 3) return now;
    } else {
      stable = 0;
      last = std::move(now);
    }
  }
  return last;
}

TEST(NodeDaemon, StatsAndRuleBytesAreInvariantUnderShardCount) {
  std::string reference_stats;
  std::string reference_rules;
  for (const std::size_t threads : {1u, 2u, 4u}) {
    NodeConfig config;
    config.threads = threads;
    config.min_support = 2;
    config.rebuild_every = 16;
    DaemonHarness harness(config);
    LockstepDriver driver(harness.daemon, 4);
    drive_association_workload(driver, 240, 8, 4, 8);

    const std::string stats = settled_stats(harness.daemon);
    // Capture the published rule bytes while the connections are still
    // open: closing them purges the departed peers from the rule set.
    const std::string rules = harness.daemon.rules_text();
    EXPECT_GT(harness.daemon.stats().rule_routed, 0u) << "threads=" << threads;
    EXPECT_GT(harness.daemon.stats().snapshots, 0u) << "threads=" << threads;
    if (threads == 1) {
      reference_stats = stats;
      reference_rules = rules;
      EXPECT_NE(rules.find('\n'), std::string::npos) << "empty rule set";
    } else {
      EXPECT_EQ(stats, reference_stats) << "threads=" << threads;
      EXPECT_EQ(rules, reference_rules) << "threads=" << threads;
    }
  }
}

// --- disconnect purge across shards --------------------------------------

TEST(NodeDaemon, DisconnectPurgesDeadPeersFromPublishedRulesAcrossShards) {
  NodeConfig config;
  config.threads = 2;
  config.min_support = 2;
  config.rebuild_every = 16;
  DaemonHarness harness(config);
  // Accept order pins ids 1..4; shard = (id-1) % 2, so ids 3 and 4 sit on
  // different shards.
  LockstepDriver driver(harness.daemon, 4);
  drive_association_workload(driver, 160, 8, 4, 8);
  (void)settled_stats(harness.daemon);

  const auto published = [&] {
    std::istringstream in(harness.daemon.rules_text());
    return core::RuleSet::load(in);
  };
  // The daemon mines neighbor-to-neighbor associations: queries arriving
  // from neighbor A are answered through neighbor B.
  const auto routes_at = [](const core::RuleSet& rules, NeighborId antecedent,
                            NeighborId consequent) {
    const auto targets = rules.top_k(antecedent, 4);
    return std::find(targets.begin(), targets.end(), consequent) !=
           targets.end();
  };

  // Hosts with h % 4 == 1 query via neighbor 2 and are answered via
  // neighbor 3 (shard 0); h % 4 == 2 query via neighbor 3, answered via
  // neighbor 4 (shard 1).  Both rules must be live before the kills.
  const core::RuleSet before = published();
  ASSERT_TRUE(routes_at(before, 2, 3)) << "workload mined no rule 2 -> 3";
  ASSERT_TRUE(routes_at(before, 3, 4)) << "workload mined no rule 3 -> 4";

  // Kill both hit-carrying connections — one per shard.
  driver.conns[2].reset();
  driver.conns[3].reset();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (harness.daemon.stats().disconnects < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "daemon never noticed the disconnects";
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // Each close purges the departed peer and republishes: the next snapshot
  // a shard routes against cannot name either dead neighbor.
  const core::RuleSet after = published();
  EXPECT_FALSE(routes_at(after, 2, 3)) << "purge left a rule at dead peer 3";
  EXPECT_FALSE(routes_at(after, 3, 4)) << "purge left a rule at dead peer 4";
}

// --- CLI flag validation (real binary) -----------------------------------

int run_cli(const std::string& args) {
  const std::string command =
      std::string(AAR_NODE_BINARY) + " " + args + " >/dev/null 2>&1";
  const int rc = std::system(command.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(NodeCli, NoCommandPrintsUsage) { EXPECT_EQ(run_cli(""), 2); }

TEST(NodeCli, UnknownCommandPrintsUsage) {
  EXPECT_EQ(run_cli("dance"), 2);
}

TEST(NodeCli, UnknownFlagIsRejected) {
  EXPECT_EQ(run_cli("serve --bogus 1"), 2);
  EXPECT_EQ(run_cli("replay --port 1 --velocity 9"), 2);
}

TEST(NodeCli, FlagWithoutValueIsRejected) {
  EXPECT_EQ(run_cli("serve --port"), 2);
}

TEST(NodeCli, ReplayRequiresPort) { EXPECT_EQ(run_cli("replay"), 2); }

TEST(NodeCli, ServeThreadsMustBeAnIntegerInRange) {
  EXPECT_EQ(run_cli("serve --threads 0"), 2);
  EXPECT_EQ(run_cli("serve --threads 65"), 2);
  EXPECT_EQ(run_cli("serve --threads four"), 2);
  EXPECT_EQ(run_cli("serve --threads 4x"), 2);
  EXPECT_EQ(run_cli("serve --threads -1"), 2);
}

TEST(NodeCli, ServeBindRejectsMalformedAddress) {
  // A bad --bind is a runtime failure (listen_tcp refuses the address),
  // not a usage error.
  EXPECT_EQ(run_cli("serve --bind 256.1.1.1 --port 0 --admin-port 0"), 1);
  EXPECT_EQ(run_cli("serve --bind not-an-addr --port 0 --admin-port 0"), 1);
}

TEST(NodeCli, AdminFailsCleanlyWhenDaemonUnreachable) {
  // Port 1 is never bound in the test environment; connect must fail and
  // the CLI must report a runtime error, not a usage error.
  EXPECT_EQ(run_cli("admin --port 1 --command health"), 1);
}

TEST(NodeCli, ServePeerMustBeStrictHostPort) {
  // parse_host_port accepts only a dotted-quad IPv4 plus a port in
  // 1..65535; anything looser is a usage error before any socket opens.
  EXPECT_EQ(run_cli("serve --peer localhost:9"), 2);
  EXPECT_EQ(run_cli("serve --peer 127.0.0.1"), 2);
  EXPECT_EQ(run_cli("serve --peer 127.0.0.1:0"), 2);
  EXPECT_EQ(run_cli("serve --peer 127.0.0.1:99999"), 2);
  EXPECT_EQ(run_cli("serve --peer :9"), 2);
  EXPECT_EQ(run_cli("serve --peer 127.0.0.1:9x"), 2);
  // Repeatable flag: one bad address poisons the whole invocation even
  // when another --peer is well-formed.
  EXPECT_EQ(run_cli("serve --peer 127.0.0.1:9 --peer nohost"), 2);
}

TEST(NodeCli, ServeKeepaliveFlagsMustBeIntegersInRange) {
  EXPECT_EQ(run_cli("serve --ping-interval -1"), 2);
  EXPECT_EQ(run_cli("serve --ping-interval 3600001"), 2);
  EXPECT_EQ(run_cli("serve --ping-interval 2s"), 2);
  EXPECT_EQ(run_cli("serve --pong-budget 0"), 2);
  EXPECT_EQ(run_cli("serve --pong-budget 101"), 2);
  EXPECT_EQ(run_cli("serve --pong-budget three"), 2);
}

TEST(NodeCli, ReplayExpectHitsMustBeAPositiveInteger) {
  EXPECT_EQ(run_cli("replay --port 1 --expect-hits 0"), 2);
  EXPECT_EQ(run_cli("replay --port 1 --expect-hits -5"), 2);
  EXPECT_EQ(run_cli("replay --port 1 --expect-hits many"), 2);
}

// --- replay stats rendering ----------------------------------------------

TEST(NodeReplay, LatencyLinesRenderNotAvailableWithoutSamples) {
  // A run that matched nothing must not print 0.0ms percentiles — that
  // would read as an impossibly fast network instead of "no hit ever came
  // back" (the --expect-hits failure mode in cluster smoke tests).
  ReplayStats stats;
  const std::string text = to_text(stats);
  EXPECT_NE(text.find("replay.latency_samples 0\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("replay.latency_p50_ms n/a\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("replay.latency_p99_ms n/a\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("replay.latency_max_ms n/a\n"), std::string::npos)
      << text;

  stats.latency_samples = 3;
  stats.latency_p50_ms = 1.25;
  stats.latency_p99_ms = 2.5;
  stats.latency_max_ms = 4.0;
  const std::string with_samples = to_text(stats);
  EXPECT_EQ(with_samples.find(" n/a"), std::string::npos) << with_samples;
  EXPECT_NE(with_samples.find("replay.latency_samples 3\n"),
            std::string::npos)
      << with_samples;
  EXPECT_NE(with_samples.find("replay.latency_p50_ms 1.25"),
            std::string::npos)
      << with_samples;
}

}  // namespace
}  // namespace aar::node
