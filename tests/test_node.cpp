// aar_node daemon tests (docs/NODE.md): the retry-ladder schedule, the
// in-process loopback end-to-end loop (serve + replay on real sockets,
// rules mined from relayed traffic, rule-routed hits), the plain-text admin
// endpoint, the send-stall ladder against a peer that stops reading, and
// the aar_node CLI's flag validation (driven through the real binary).

#include <gtest/gtest.h>
#include <sys/wait.h>

#include <chrono>
#include <cstdlib>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "gnutella/codec.hpp"
#include "node/daemon.hpp"
#include "node/net.hpp"
#include "node/replay.hpp"
#include "util/rng.hpp"

namespace aar::node {
namespace {

// --- retry ladder schedule -----------------------------------------------

TEST(RetryLadder, DelaysDoublePerAttempt) {
  const RetryLadder ladder{.retries = 3, .backoff_ms = 10, .jitter_ms = 0};
  util::Rng rng(1);
  EXPECT_EQ(ladder.delay_ms(0, rng), 10u);
  EXPECT_EQ(ladder.delay_ms(1, rng), 20u);
  EXPECT_EQ(ladder.delay_ms(2, rng), 40u);
  EXPECT_FALSE(ladder.exhausted(2));
  EXPECT_TRUE(ladder.exhausted(3));
}

TEST(RetryLadder, JitterStaysInBounds) {
  const RetryLadder ladder{.retries = 2, .backoff_ms = 8, .jitter_ms = 5};
  util::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t delay = ladder.delay_ms(1, rng);
    EXPECT_GE(delay, 16u);
    EXPECT_LE(delay, 21u);
  }
}

TEST(RetryLadder, ZeroBackoffStillWaits) {
  const RetryLadder ladder{.retries = 1, .backoff_ms = 0, .jitter_ms = 0};
  util::Rng rng(1);
  EXPECT_GE(ladder.delay_ms(0, rng), 1u);  // clamped: a zero wait would spin
}

TEST(RetryLadder, HugeAttemptDoesNotOverflow) {
  const RetryLadder ladder{.retries = 100, .backoff_ms = 1000, .jitter_ms = 0};
  util::Rng rng(1);
  EXPECT_LE(ladder.delay_ms(99, rng), 60u * 1000u);  // capped at a minute
}

// --- in-process loopback end to end --------------------------------------

struct DaemonHarness {
  explicit DaemonHarness(NodeConfig config = {})
      : daemon(config), server([this] { daemon.run(); }) {}
  ~DaemonHarness() {
    daemon.stop();
    if (server.joinable()) server.join();
  }
  Daemon daemon;
  std::thread server;
};

std::string admin_request(std::uint16_t port, const std::string& command) {
  Fd fd = connect_tcp("127.0.0.1", port);
  const std::string line = command + "\n";
  std::span<const std::uint8_t> remaining(
      reinterpret_cast<const std::uint8_t*>(line.data()), line.size());
  while (!remaining.empty()) {
    const IoResult r = write_some(fd.get(), remaining);
    if (r.status == IoStatus::closed) return {};
    remaining = remaining.subspan(r.n);
  }
  std::string reply;
  std::vector<std::uint8_t> buffer(16 * 1024);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (std::chrono::steady_clock::now() < deadline) {
    const IoResult r = read_some(fd.get(), buffer);
    if (r.status == IoStatus::closed) break;
    if (r.status == IoStatus::would_block) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    reply.append(reinterpret_cast<const char*>(buffer.data()), r.n);
  }
  return reply;
}

TEST(NodeDaemon, LoopbackReplayMinesRulesAndRoutesHits) {
  NodeConfig config;
  config.min_support = 2;
  config.rebuild_every = 16;
  DaemonHarness harness(config);

  ReplayConfig load;
  load.port = harness.daemon.port();
  load.connections = 4;
  load.pairs = 1500;
  load.hosts = 16;
  load.hit_lag = 8;
  load.rate = 20'000.0;  // paced so hits land after their queries
  load.drain_ms = 300;
  load.seed = 3;
  const ReplayStats replay = run_replay(load);

  // The relay worked end to end: hits were routed back along the reverse
  // path to the connection that issued the query...
  EXPECT_GT(replay.matched_hits, 0u);
  // ...and every relayed frame carried the rewritten header (the TTL/hops
  // regression, verified on real wire bytes).
  EXPECT_EQ(replay.ttl_violations, 0u);
  EXPECT_EQ(replay.malformed, 0u);

  harness.daemon.stop();
  harness.server.join();
  const NodeStats& stats = harness.daemon.stats();
  EXPECT_EQ(stats.queries_in, 1500u);
  EXPECT_EQ(stats.hits_in, 1500u);
  // Observed pairs fed the miner, snapshots produced rules, and live
  // queries were routed by them — with hits to show for it.
  EXPECT_GT(stats.pairs_mined, 0u);
  EXPECT_GT(stats.snapshots, 0u);
  EXPECT_GT(stats.rule_routed, 0u);
  EXPECT_GT(stats.routed_hits, 0u);
  EXPECT_GT(stats.routed_hit_fraction(), 0.0);
}

TEST(NodeDaemon, AdminEndpointServesStatsMetricsHealth) {
  NodeConfig config;
  DaemonHarness harness(config);

  ReplayConfig load;
  load.port = harness.daemon.port();
  load.connections = 2;
  load.pairs = 50;
  load.hit_lag = 4;
  load.rate = 10'000.0;
  load.drain_ms = 100;
  const ReplayStats replay = run_replay(load);
  ASSERT_GT(replay.frames_received, 0u);

  EXPECT_EQ(admin_request(harness.daemon.admin_port(), "health"), "ok\n");

  const std::string stats =
      admin_request(harness.daemon.admin_port(), "stats");
  EXPECT_NE(stats.find("node.messages_in 100"), std::string::npos) << stats;
  EXPECT_NE(stats.find("node.routed_hit_fraction"), std::string::npos);
  EXPECT_NE(stats.find("end\n"), std::string::npos);

  const std::string metrics =
      admin_request(harness.daemon.admin_port(), "metrics");
  EXPECT_NE(metrics.find("aar.metrics.v1"), std::string::npos);

  const std::string unknown =
      admin_request(harness.daemon.admin_port(), "frobnicate");
  EXPECT_NE(unknown.find("err unknown command"), std::string::npos);
}

TEST(NodeDaemon, AdminShutdownStopsTheLoop) {
  DaemonHarness harness;
  EXPECT_EQ(admin_request(harness.daemon.admin_port(), "shutdown"), "ok\n");
  harness.server.join();  // run() must return on its own
  EXPECT_GE(harness.daemon.stats().admin_requests, 1u);
}

TEST(NodeDaemon, SendStallLadderDisconnectsDeadPeer) {
  NodeConfig config;
  config.retries = 2;
  config.backoff_ms = 5;
  config.send_timeout_ms = 400;
  config.send_buffer = 4096;  // shrink the kernel's slack
  DaemonHarness harness(config);

  // Peer A sends large queries; peer B never reads its socket, so the
  // daemon's relays to B stall, the ladder retries, and B is declared dead.
  Fd sender = connect_tcp("127.0.0.1", harness.daemon.port());
  Fd dead = connect_tcp("127.0.0.1", harness.daemon.port());

  const std::string big(32 * 1024, 'q');
  std::vector<std::uint8_t> frame;
  for (std::uint64_t i = 0; i < 512; ++i) {
    frame = gnutella::serialize(
        gnutella::make_query(gnutella::make_wire_guid(i + 1), 4, 0, big));
    std::span<const std::uint8_t> remaining(frame.data(), frame.size());
    bool alive = true;
    while (!remaining.empty() && alive) {
      const IoResult r = write_some(sender.get(), remaining);
      switch (r.status) {
        case IoStatus::closed:
          alive = false;
          break;
        case IoStatus::would_block:
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          break;
        case IoStatus::ok:
          remaining = remaining.subspan(r.n);
          break;
      }
    }
  }

  // Wait for the ladder to walk its rungs and give up on B.  The budget is
  // generous: a cold first run under ASan on one core can take several
  // seconds before the stall clock even starts.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string stats =
        admin_request(harness.daemon.admin_port(), "stats");
    if (stats.find("node.send_timeouts 0\n") == std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  harness.daemon.stop();
  harness.server.join();
  const NodeStats& stats = harness.daemon.stats();
  EXPECT_GE(stats.send_retries, 1u);
  EXPECT_GE(stats.send_timeouts, 1u);
  EXPECT_GE(stats.disconnects, 1u);
}

// --- CLI flag validation (real binary) -----------------------------------

int run_cli(const std::string& args) {
  const std::string command =
      std::string(AAR_NODE_BINARY) + " " + args + " >/dev/null 2>&1";
  const int rc = std::system(command.c_str());
  return WIFEXITED(rc) ? WEXITSTATUS(rc) : -1;
}

TEST(NodeCli, NoCommandPrintsUsage) { EXPECT_EQ(run_cli(""), 2); }

TEST(NodeCli, UnknownCommandPrintsUsage) {
  EXPECT_EQ(run_cli("dance"), 2);
}

TEST(NodeCli, UnknownFlagIsRejected) {
  EXPECT_EQ(run_cli("serve --bogus 1"), 2);
  EXPECT_EQ(run_cli("replay --port 1 --velocity 9"), 2);
}

TEST(NodeCli, FlagWithoutValueIsRejected) {
  EXPECT_EQ(run_cli("serve --port"), 2);
}

TEST(NodeCli, ReplayRequiresPort) { EXPECT_EQ(run_cli("replay"), 2); }

TEST(NodeCli, AdminFailsCleanlyWhenDaemonUnreachable) {
  // Port 1 is never bound in the test environment; connect must fail and
  // the CLI must report a runtime error, not a usage error.
  EXPECT_EQ(run_cli("admin --port 1 --command health"), 1);
}

}  // namespace
}  // namespace aar::node
