#include "util/csv.hpp"
#include "util/table.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>

#include "test_tmp.hpp"

namespace aar::util {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.row({"a", "1"});
  t.row({"longer", "22"});
  const std::string out = t.str();
  std::istringstream is(out);
  std::string header, underline, row1, row2;
  std::getline(is, header);
  std::getline(is, underline);
  std::getline(is, row1);
  std::getline(is, row2);
  EXPECT_EQ(header.size(), row2.size());
  EXPECT_NE(header.find("name"), std::string::npos);
  EXPECT_NE(underline.find("----"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.row({"only-one"});
  EXPECT_EQ(t.columns(), 3u);
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.str().find("only-one"), std::string::npos);
}

TEST(Table, NumFormatsPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, IntegerThousandsSeparators) {
  EXPECT_EQ(Table::integer(0), "0");
  EXPECT_EQ(Table::integer(999), "999");
  EXPECT_EQ(Table::integer(1000), "1,000");
  EXPECT_EQ(Table::integer(10514090), "10,514,090");
  EXPECT_EQ(Table::integer(-1234567), "-1,234,567");
}

TEST(Table, PctFormats) {
  EXPECT_EQ(Table::pct(0.793, 1), "79.3%");
  EXPECT_EQ(Table::pct(1.0, 0), "100%");
}

class CsvTest : public ::testing::Test {
 protected:
  // Shared process-unique prefix (tests/test_tmp.hpp): fixed names are
  // flaky under ctest -j.
  std::string path_ = aar::testing::unique_path("csv_test.csv");
  void TearDown() override { std::remove(path_.c_str()); }

  std::string slurp() {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_);
    csv.header({"block", "coverage"});
    csv.row({0.0, 0.8});
    csv.row({1.0, 0.75});
  }
  const std::string content = slurp();
  EXPECT_NE(content.find("block,coverage"), std::string::npos);
  EXPECT_NE(content.find("0,0.8"), std::string::npos);
  EXPECT_NE(content.find("1,0.75"), std::string::npos);
}

TEST_F(CsvTest, EscapesSpecialCells) {
  {
    CsvWriter csv(path_);
    std::vector<std::string> cells{"a,b", "say \"hi\"", "plain"};
    csv.row(std::span<const std::string>(cells));
  }
  const std::string content = slurp();
  EXPECT_NE(content.find("\"a,b\""), std::string::npos);
  EXPECT_NE(content.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(content.find("plain"), std::string::npos);
}

TEST_F(CsvTest, SeriesCsvShapes) {
  const std::vector<std::string> names{"alpha", "rho"};
  const std::vector<std::vector<double>> cols{{0.8, 0.7}, {0.6, 0.5, 0.4}};
  write_series_csv(path_, names, cols);
  const std::string content = slurp();
  EXPECT_NE(content.find("index,alpha,rho"), std::string::npos);
  // Three rows: the longest column wins; short columns pad with 0.
  EXPECT_NE(content.find("2,0,0.4"), std::string::npos);
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/proc/definitely/not/writable.csv"),
               std::runtime_error);
}

}  // namespace
}  // namespace aar::util
