// Lossy Counting (Manku & Motwani) and the StreamingRuleset strategy that
// realizes the paper's Section VI data-stream pointer with bounded memory.

#include <gtest/gtest.h>

#include <map>

#include "assoc/stream.hpp"
#include "core/strategy.hpp"
#include "core/trace_simulator.hpp"
#include "trace/generator.hpp"
#include "util/rng.hpp"

namespace aar {
namespace {

// --- LossyCounter ---------------------------------------------------------------

TEST(LossyCounter, ExactForShortStreams) {
  assoc::LossyCounter counter(0.01);  // bucket width 100
  for (int i = 0; i < 50; ++i) counter.add(7);
  for (int i = 0; i < 30; ++i) counter.add(9);
  EXPECT_EQ(counter.count(7), 50u);
  EXPECT_EQ(counter.count(9), 30u);
  EXPECT_EQ(counter.count(1), 0u);
  EXPECT_EQ(counter.items_processed(), 80u);
}

TEST(LossyCounter, NeverOvercountsAndUndercountsWithinEpsilonN) {
  constexpr double kEpsilon = 0.005;
  assoc::LossyCounter counter(kEpsilon);
  std::map<std::uint64_t, std::uint64_t> truth;
  util::Rng rng(3);
  // Zipf-ish stream over 200 keys.
  util::ZipfSampler zipf(200, 1.0);
  constexpr int kItems = 50'000;
  for (int i = 0; i < kItems; ++i) {
    const std::uint64_t key = zipf(rng);
    ++truth[key];
    counter.add(key);
  }
  const double max_undercount = kEpsilon * kItems;
  for (const auto& [key, true_count] : truth) {
    const std::uint64_t estimate = counter.count(key);
    EXPECT_LE(estimate, true_count);  // estimates never exceed truth
    if (static_cast<double>(true_count) > max_undercount) {
      // Guarantee: undercount bounded by εN (and the item is present).
      EXPECT_GE(static_cast<double>(estimate),
                static_cast<double>(true_count) - max_undercount);
      EXPECT_GE(counter.upper_bound(key), true_count);
    }
  }
}

TEST(LossyCounter, FrequentIsSupersetOfTrulyFrequent) {
  constexpr double kEpsilon = 0.002;
  constexpr double kSupport = 0.02;
  assoc::LossyCounter counter(kEpsilon);
  std::map<std::uint64_t, std::uint64_t> truth;
  util::Rng rng(5);
  util::ZipfSampler zipf(500, 1.1);
  constexpr int kItems = 100'000;
  for (int i = 0; i < kItems; ++i) {
    const std::uint64_t key = zipf(rng);
    ++truth[key];
    counter.add(key);
  }
  const auto reported = counter.frequent(kSupport);
  std::map<std::uint64_t, std::uint64_t> reported_map(reported.begin(),
                                                      reported.end());
  for (const auto& [key, count] : truth) {
    if (static_cast<double>(count) >= kSupport * kItems) {
      EXPECT_TRUE(reported_map.contains(key)) << "missed frequent key " << key;
    }
  }
}

TEST(LossyCounter, MemoryStaysBounded) {
  assoc::LossyCounter counter(0.01);
  util::Rng rng(7);
  // A million items over a huge key space: the table must stay near
  // O(1/ε · log εN) — far below the distinct-key count.
  for (int i = 0; i < 1'000'000; ++i) {
    counter.add(rng.below(1u << 30));  // almost all keys distinct, all rare
  }
  EXPECT_LT(counter.table_size(), 2'000u);
}

TEST(LossyCounter, ClearResets) {
  assoc::LossyCounter counter(0.1);
  counter.add(1);
  counter.add(1);
  counter.clear();
  EXPECT_EQ(counter.count(1), 0u);
  EXPECT_EQ(counter.items_processed(), 0u);
  EXPECT_EQ(counter.table_size(), 0u);
}

// --- StreamingRuleset -------------------------------------------------------------

std::vector<trace::QueryReplyPair> block_of(core::HostId source,
                                            core::HostId replier, std::size_t n,
                                            trace::Guid base) {
  std::vector<trace::QueryReplyPair> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    pairs.push_back({.time = 0.0,
                     .guid = base + i,
                     .source_host = source,
                     .replying_neighbor = replier});
  }
  return pairs;
}

TEST(StreamingRuleset, LearnsAndCovers) {
  core::StreamingRuleset strategy(10, 1e-3, 1'000, 3.0);
  strategy.bootstrap(block_of(1, 100, 50, 0));
  const core::BlockMeasures m = strategy.test_block(block_of(1, 100, 50, 1'000));
  EXPECT_DOUBLE_EQ(m.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(m.success(), 1.0);
}

TEST(StreamingRuleset, EpochRotationForgetsTheStalePast) {
  // Epoch = 100 pairs; rules from >2 epochs ago must be gone.
  core::StreamingRuleset strategy(10, 1e-3, 100, 3.0);
  strategy.bootstrap(block_of(1, 100, 50, 0));
  strategy.test_block(block_of(2, 200, 300, 1'000));  // 3 epochs of host 2
  const core::BlockMeasures late = strategy.test_block(block_of(1, 100, 2, 9'000));
  EXPECT_DOUBLE_EQ(late.coverage(), 0.0);  // host 1 evicted by rotation
}

TEST(StreamingRuleset, MatchesIncrementalOnTheCalibratedTrace) {
  trace::TraceConfig config;
  config.seed = 11;
  config.block_size = 2'000;
  config.active_hosts = 60;
  trace::TraceGenerator generator(config);
  const auto pairs = generator.generate_pairs(30 * 2'000);

  core::StreamingRuleset streaming(10, 1e-3, 2'000, 3.0);
  core::IncrementalRuleset incremental(10);
  const auto r_streaming = core::run_trace_simulation(streaming, pairs, 2'000);
  const auto r_incremental =
      core::run_trace_simulation(incremental, pairs, 2'000);
  // Both realize the always-fresh idea; lossy counting should land within a
  // few points of the decay variant on both measures.
  EXPECT_GT(r_streaming.avg_coverage(), r_incremental.avg_coverage() - 0.07);
  EXPECT_GT(r_streaming.avg_success(), r_incremental.avg_success() - 0.07);
  EXPECT_GT(r_streaming.avg_coverage(), 0.85);
}

TEST(StreamingRuleset, TableSizeStaysSmall) {
  trace::TraceConfig config;
  config.seed = 13;
  config.block_size = 2'000;
  trace::TraceGenerator generator(config);
  const auto pairs = generator.generate_pairs(20 * 2'000);
  core::StreamingRuleset strategy(10, 1e-3, 2'000, 3.0);
  strategy.bootstrap(std::span(pairs).first(2'000));
  for (std::size_t b = 1; b < 20; ++b) {
    strategy.test_block(std::span(pairs).subspan(b * 2'000, 2'000));
  }
  // Bounded by the lossy-counting guarantee, not by the stream length.
  EXPECT_LT(strategy.table_size(), 5'000u);
}

}  // namespace
}  // namespace aar
