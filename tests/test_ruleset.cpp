#include "core/ruleset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <vector>

namespace aar::core {
namespace {

using trace::QueryReplyPair;

/// n pairs (source -> replier), one query each.
void add_pairs(std::vector<QueryReplyPair>& pairs, HostId source,
               HostId replier, int count) {
  for (int i = 0; i < count; ++i) {
    pairs.push_back(QueryReplyPair{
        .time = static_cast<double>(pairs.size()),
        .guid = static_cast<trace::Guid>(pairs.size() + 1),
        .source_host = source,
        .replying_neighbor = replier,
    });
  }
}

TEST(RuleSet, BuildCountsAndPrunes) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 100, 5);
  add_pairs(pairs, 1, 101, 2);
  add_pairs(pairs, 2, 100, 3);
  add_pairs(pairs, 3, 102, 1);

  const RuleSet rules = RuleSet::build(pairs, 3);
  EXPECT_TRUE(rules.covers(1));
  EXPECT_TRUE(rules.covers(2));
  EXPECT_FALSE(rules.covers(3));            // below threshold
  EXPECT_TRUE(rules.matches(1, 100));
  EXPECT_FALSE(rules.matches(1, 101));      // pair pruned
  EXPECT_TRUE(rules.matches(2, 100));
  EXPECT_FALSE(rules.matches(2, 101));
  EXPECT_EQ(rules.num_antecedents(), 2u);
  EXPECT_EQ(rules.num_rules(), 2u);
}

TEST(RuleSet, MinSupportOneKeepsEverything) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 100, 1);
  add_pairs(pairs, 2, 101, 1);
  const RuleSet rules = RuleSet::build(pairs, 1);
  EXPECT_EQ(rules.num_rules(), 2u);
}

TEST(RuleSet, EmptyInput) {
  const RuleSet rules = RuleSet::build({}, 1);
  EXPECT_TRUE(rules.empty());
  EXPECT_FALSE(rules.covers(1));
  EXPECT_FALSE(rules.matches(1, 2));
  EXPECT_TRUE(rules.consequents(1).empty());
  EXPECT_TRUE(rules.top_k(1, 3).empty());
}

TEST(RuleSet, ConsequentsSortedBySupportDescending) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 100, 2);
  add_pairs(pairs, 1, 101, 7);
  add_pairs(pairs, 1, 102, 4);
  const RuleSet rules = RuleSet::build(pairs, 1);
  const auto consequents = rules.consequents(1);
  ASSERT_EQ(consequents.size(), 3u);
  EXPECT_EQ(consequents[0].neighbor, 101u);
  EXPECT_EQ(consequents[0].support, 7u);
  EXPECT_EQ(consequents[1].neighbor, 102u);
  EXPECT_EQ(consequents[2].neighbor, 100u);
}

TEST(RuleSet, TiesBreakByNeighborId) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 200, 3);
  add_pairs(pairs, 1, 100, 3);
  const RuleSet rules = RuleSet::build(pairs, 1);
  const auto consequents = rules.consequents(1);
  ASSERT_EQ(consequents.size(), 2u);
  EXPECT_EQ(consequents[0].neighbor, 100u);  // deterministic tie-break
}

TEST(RuleSet, TopKTruncates) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 100, 5);
  add_pairs(pairs, 1, 101, 4);
  add_pairs(pairs, 1, 102, 3);
  const RuleSet rules = RuleSet::build(pairs, 1);
  EXPECT_EQ(rules.top_k(1, 2), (std::vector<HostId>{100, 101}));
  EXPECT_EQ(rules.top_k(1, 10).size(), 3u);
  EXPECT_TRUE(rules.top_k(99, 2).empty());
}

TEST(RuleSet, RandomKIsSubsetOfConsequents) {
  std::vector<QueryReplyPair> pairs;
  for (HostId replier = 100; replier < 110; ++replier) {
    add_pairs(pairs, 1, replier, 2);
  }
  const RuleSet rules = RuleSet::build(pairs, 1);
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const auto picked = rules.random_k(1, 4, rng);
    EXPECT_EQ(picked.size(), 4u);
    std::set<HostId> unique(picked.begin(), picked.end());
    EXPECT_EQ(unique.size(), 4u);  // no repeats
    for (HostId h : picked) {
      EXPECT_GE(h, 100u);
      EXPECT_LT(h, 110u);
    }
  }
}

TEST(RuleSet, RandomKVariesAcrossDraws) {
  std::vector<QueryReplyPair> pairs;
  for (HostId replier = 100; replier < 110; ++replier) {
    add_pairs(pairs, 1, replier, 2);
  }
  const RuleSet rules = RuleSet::build(pairs, 1);
  util::Rng rng(4);
  std::set<std::vector<HostId>> draws;
  for (int trial = 0; trial < 20; ++trial) {
    auto picked = rules.random_k(1, 3, rng);
    std::sort(picked.begin(), picked.end());
    draws.insert(picked);
  }
  EXPECT_GT(draws.size(), 1u);
}

TEST(RuleSet, SupportCountsAreExact) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 7, 300, 13);
  const RuleSet rules = RuleSet::build(pairs, 10);
  const auto consequents = rules.consequents(7);
  ASSERT_EQ(consequents.size(), 1u);
  EXPECT_EQ(consequents[0].support, 13u);
}

TEST(RuleSetSerialization, RoundTripsExactly) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 100, 5);
  add_pairs(pairs, 1, 101, 3);
  add_pairs(pairs, 42, 200, 7);
  const RuleSet original = RuleSet::build(pairs, 1);
  std::stringstream buffer;
  original.save(buffer);
  const RuleSet loaded = RuleSet::load(buffer);
  EXPECT_EQ(loaded, original);
  EXPECT_EQ(loaded.num_rules(), 3u);
  EXPECT_EQ(loaded.top_k(1, 1), (std::vector<HostId>{100}));
}

TEST(RuleSetSerialization, SupportPrunedSetRoundTrips) {
  // Persistence must preserve exactly what pruning left, nothing more.
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 100, 6);
  add_pairs(pairs, 1, 101, 2);   // pruned at min_support 3
  add_pairs(pairs, 2, 102, 1);   // antecedent pruned entirely
  const RuleSet original = RuleSet::build(pairs, 3);
  ASSERT_EQ(original.num_rules(), 1u);
  std::stringstream buffer;
  original.save(buffer);
  const RuleSet loaded = RuleSet::load(buffer);
  EXPECT_EQ(loaded, original);
  EXPECT_TRUE(loaded.matches(1, 100));
  EXPECT_FALSE(loaded.matches(1, 101));
  EXPECT_FALSE(loaded.covers(2));
}

TEST(RuleSetSerialization, ConfidencePrunedSetRoundTrips) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 100, 8);   // confidence 8/10
  add_pairs(pairs, 1, 101, 2);   // confidence 2/10 — pruned at 0.5
  const RuleSet original = RuleSet::build(pairs, 1, /*min_confidence=*/0.5);
  ASSERT_EQ(original.num_rules(), 1u);
  std::stringstream buffer;
  original.save(buffer);
  const RuleSet loaded = RuleSet::load(buffer);
  EXPECT_EQ(loaded, original);
  const auto consequents = loaded.consequents(1);
  ASSERT_EQ(consequents.size(), 1u);
  EXPECT_EQ(consequents[0].neighbor, 100u);
  EXPECT_EQ(consequents[0].support, 8u);
}

TEST(RuleSetSerialization, PrunedToEmptyRoundTrips) {
  // A set whose every rule fell to pruning is a valid (empty) persisted set.
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 1, 100, 2);
  const RuleSet original = RuleSet::build(pairs, 100);
  ASSERT_TRUE(original.empty());
  std::stringstream buffer;
  original.save(buffer);
  const RuleSet loaded = RuleSet::load(buffer);
  EXPECT_EQ(loaded, original);
  EXPECT_TRUE(loaded.empty());
  EXPECT_EQ(loaded.num_rules(), 0u);
}

TEST(RuleSetSerialization, EmptyRoundTrips) {
  std::stringstream buffer;
  RuleSet{}.save(buffer);
  EXPECT_TRUE(RuleSet::load(buffer).empty());
}

TEST(RuleSetSerialization, SaveIsDeterministicallyOrdered) {
  std::vector<QueryReplyPair> pairs;
  add_pairs(pairs, 9, 300, 2);
  add_pairs(pairs, 1, 100, 2);
  const RuleSet rules = RuleSet::build(pairs, 1);
  std::stringstream a;
  std::stringstream b;
  rules.save(a);
  rules.save(b);
  EXPECT_EQ(a.str(), b.str());
  // Antecedents ascending in the text.
  EXPECT_LT(a.str().find("1,100"), a.str().find("9,300"));
}

TEST(RuleSetSerialization, RejectsMissingHeader) {
  std::stringstream buffer("1,2,3\n");
  EXPECT_THROW((void)RuleSet::load(buffer), std::runtime_error);
}

TEST(RuleSetSerialization, RejectsMalformedRows) {
  std::stringstream buffer("antecedent,consequent,support\n1,abc,3\n");
  EXPECT_THROW((void)RuleSet::load(buffer), std::runtime_error);
  std::stringstream missing("antecedent,consequent,support\n1,2\n");
  EXPECT_THROW((void)RuleSet::load(missing), std::runtime_error);
}

// Property sweep: pruning threshold monotonically shrinks the rule set.
class PruneSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(PruneSweep, HigherThresholdNeverAddsRules) {
  std::vector<QueryReplyPair> pairs;
  util::Rng rng(5);
  for (int i = 0; i < 2'000; ++i) {
    add_pairs(pairs, static_cast<HostId>(rng.below(20)),
              static_cast<HostId>(100 + rng.below(10)), 1);
  }
  const std::uint32_t threshold = GetParam();
  const RuleSet loose = RuleSet::build(pairs, threshold);
  const RuleSet strict = RuleSet::build(pairs, threshold + 5);
  EXPECT_LE(strict.num_rules(), loose.num_rules());
  // Every strict rule exists in the loose set.
  for (const auto& [antecedent, consequents] : strict.rules()) {
    for (const auto& consequent : consequents) {
      EXPECT_TRUE(loose.matches(antecedent, consequent.neighbor));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, PruneSweep,
                         ::testing::Values(1, 2, 5, 10, 20));

}  // namespace
}  // namespace aar::core
