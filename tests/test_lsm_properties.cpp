// aar::lsm property battery (docs/STORAGE.md): the differential suite that
// makes the tiered store trustworthy.
//
//   * 500-trial random differential — every trial drives a Store and a
//     shadow std::map through the same randomized insert/flush/compact
//     schedule and requires byte-identical canonical dumps after every
//     maintenance step.  Counts merge by addition, so the shadow is just
//     per-key sums with exact zeros dropped.
//   * Block slicing invariance — BlockScanner must decode the same entries
//     from ANY chunking of the same byte stream (the codec-suite property
//     applied to lsm frames).
//   * Bloom filter — zero false negatives ever; false-positive rate inside
//     the banded expectation for 10 bits/key.
//   * Miner spill differential — a miner spilling cold antecedents into a
//     Store must snapshot byte-identical rules to a miner that never
//     spills, across eviction, purge, and clear.
//   * Background compaction — concurrent writers against the maintenance
//     thread (the TSan target; see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "lsm/bloom.hpp"
#include "lsm/format.hpp"
#include "lsm/store.hpp"
#include "mining/incremental_miner.hpp"
#include "test_tmp.hpp"
#include "trace/record.hpp"
#include "util/rng.hpp"

namespace aar::lsm {
namespace {

using aar::testing::ScopedTempDir;

// --- shadow model ---------------------------------------------------------

/// The reference semantics: per-key signed sums, exact zeros invisible.
class ShadowMap {
 public:
  void add(HostId antecedent, HostId consequent, std::int64_t delta) {
    map_[make_key(antecedent, consequent)] += delta;
  }

  /// Canonical dump in Store::dump_text() format (nonzero sums only).
  [[nodiscard]] std::string dump_text() const {
    std::string out;
    for (const auto& [key, count] : map_) {
      if (count == 0) continue;
      out += std::to_string(key_antecedent(key));
      out += ',';
      out += std::to_string(key_consequent(key));
      out += ',';
      out += std::to_string(count);
      out += '\n';
    }
    return out;
  }

  [[nodiscard]] std::int64_t get(HostId antecedent, HostId consequent) const {
    const auto it = map_.find(make_key(antecedent, consequent));
    return it == map_.end() ? 0 : it->second;
  }

 private:
  std::map<Key, std::int64_t> map_;
};

// --- 500-trial random differential ---------------------------------------

TEST(LsmDifferential, FiveHundredRandomTrialsMatchShadowByteForByte) {
  ScopedTempDir tmp("aar_lsm_diff");
  for (std::uint64_t trial = 0; trial < 500; ++trial) {
    util::Rng rng(0x5eed + trial);
    StoreOptions options;
    // Tiny budgets so every trial exercises flush + multi-level compaction
    // paths, not just the memtable.
    options.memtable_bytes = 1u << (8 + rng.below(4));  // 256B..2KiB
    options.block_bytes = 64u << rng.below(4);          // 64B..512B blocks
    options.level_fanout = 2 + static_cast<std::uint32_t>(rng.below(3));
    const std::string dir = tmp.path("trial_" + std::to_string(trial));
    Store store(dir, options);
    ShadowMap shadow;

    const std::uint32_t hosts = 4 + static_cast<std::uint32_t>(rng.below(28));
    const std::size_t ops = 50 + rng.below(150);
    for (std::size_t op = 0; op < ops; ++op) {
      const auto a = static_cast<HostId>(rng.below(hosts));
      const auto c = static_cast<HostId>(rng.below(hosts));
      // Mostly increments, some negative corrections (the miner's restore
      // deltas), occasionally large.
      std::int64_t delta = 1 + static_cast<std::int64_t>(rng.below(5));
      if (rng.below(4) == 0) delta = -delta;
      if (rng.below(16) == 0) delta *= 1000;
      store.add(a, c, delta);
      shadow.add(a, c, delta);
      if (rng.below(32) == 0) store.flush();
      if (rng.below(64) == 0) store.compact();
    }
    // Reads must agree in every store state: memtable-resident, after
    // flush, and after full compaction.
    ASSERT_EQ(store.dump_text(), shadow.dump_text())
        << "trial " << trial << " diverged before maintenance";
    store.maintain();
    ASSERT_EQ(store.dump_text(), shadow.dump_text())
        << "trial " << trial << " diverged after maintain()";
    for (std::uint32_t a = 0; a < hosts; ++a) {
      for (std::uint32_t c = 0; c < hosts; ++c) {
        ASSERT_EQ(store.get_count(a, c), shadow.get(a, c))
            << "trial " << trial << " key (" << a << "," << c << ")";
      }
    }
  }
}

TEST(LsmDifferential, ReopenedStoreServesTheFlushedState) {
  ScopedTempDir tmp("aar_lsm_reopen");
  ShadowMap shadow;
  util::Rng rng(99);
  {
    Store store(tmp.path("db"), {.memtable_bytes = 512});
    for (int i = 0; i < 2000; ++i) {
      const auto a = static_cast<HostId>(rng.below(50));
      const auto c = static_cast<HostId>(rng.below(50));
      store.add(a, c, 1);
      shadow.add(a, c, 1);
    }
    store.flush();  // durable boundary: everything below is on disk
  }
  Store reopened(tmp.path("db"));
  EXPECT_EQ(reopened.dump_text(), shadow.dump_text());
  EXPECT_EQ(reopened.stats().recovered_from, "MANIFEST");
}

// --- block slicing invariance --------------------------------------------

std::vector<Entry> random_entries(util::Rng& rng, std::size_t n) {
  std::map<Key, std::int64_t> keyed;
  while (keyed.size() < n) {
    const Key key = make_key(static_cast<HostId>(rng.below(1000)),
                             static_cast<HostId>(rng.below(1000)));
    keyed[key] = static_cast<std::int64_t>(rng.below(1'000'000)) - 500'000;
  }
  std::vector<Entry> out;
  out.reserve(n);
  for (const auto& [key, count] : keyed) out.push_back({key, count});
  return out;
}

TEST(LsmBlockScanner, DecodedEntriesAreInvariantUnderSlicing) {
  util::Rng rng(31337);
  for (int round = 0; round < 50; ++round) {
    // Several blocks of varying fullness concatenated into one stream.
    const std::vector<Entry> entries = random_entries(rng, 40 + rng.below(200));
    std::string stream;
    BlockBuilder builder(1 + static_cast<std::uint32_t>(rng.below(20)));
    std::size_t per_block = 1 + rng.below(30);
    for (const Entry& entry : entries) {
      builder.add(entry.key, entry.count);
      if (builder.entries() >= per_block) {
        builder.finish(stream);
        per_block = 1 + rng.below(30);
      }
    }
    if (!builder.empty()) builder.finish(stream);

    // Whole-stream decode is the reference.
    std::vector<Entry> reference;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      std::size_t consumed = 0;
      decode_block(
          reinterpret_cast<const unsigned char*>(stream.data()) + offset,
          stream.size() - offset, reference, consumed);
      offset += consumed;
    }
    ASSERT_EQ(reference, entries);

    // Any chunking through the scanner must produce the same entries.
    for (int slicing = 0; slicing < 8; ++slicing) {
      BlockScanner scanner;
      std::vector<Entry> sliced;
      std::size_t at = 0;
      while (at < stream.size()) {
        const std::size_t take =
            std::min<std::size_t>(1 + rng.below(37), stream.size() - at);
        scanner.feed(
            reinterpret_cast<const unsigned char*>(stream.data()) + at, take,
            sliced);
        at += take;
      }
      ASSERT_EQ(sliced, entries) << "slicing " << slicing;
      EXPECT_EQ(scanner.pending(), 0u);
    }
  }
}

TEST(LsmBlockScanner, TruncatedTailStaysPendingAndCorruptionThrows) {
  util::Rng rng(7);
  const std::vector<Entry> entries = random_entries(rng, 64);
  std::string stream;
  BlockBuilder builder;
  for (const Entry& entry : entries) builder.add(entry.key, entry.count);
  builder.finish(stream);

  // Truncation: entries never appear, bytes stay buffered, no throw.
  BlockScanner truncated;
  std::vector<Entry> out;
  truncated.feed(reinterpret_cast<const unsigned char*>(stream.data()),
                 stream.size() - 5, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(truncated.pending(), stream.size() - 5);

  // A flipped payload byte must fail the CRC, not decode garbage counts.
  std::string corrupt = stream;
  corrupt[12] = static_cast<char>(corrupt[12] ^ 0x40);
  BlockScanner scanner;
  EXPECT_THROW(
      scanner.feed(reinterpret_cast<const unsigned char*>(corrupt.data()),
                   corrupt.size(), out),
      CorruptBlock);
}

// --- bloom filter ---------------------------------------------------------

TEST(LsmBloom, NoFalseNegativesAndBandedFalsePositiveRate) {
  util::Rng rng(404);
  const std::size_t n = 10'000;
  std::vector<HostId> members;
  members.reserve(n);
  Bloom bloom(n, 10);
  for (std::size_t i = 0; i < n; ++i) {
    const auto key = static_cast<HostId>(rng());
    members.push_back(key);
    bloom.add(key);
  }
  for (const HostId key : members) {
    ASSERT_TRUE(bloom.may_contain(key));  // never a false negative
  }
  std::size_t false_positives = 0;
  const std::size_t probes = 100'000;
  for (std::size_t i = 0; i < probes; ++i) {
    // Fresh u32 draws collide with a member with probability n/2^32, a
    // vanishing inflation next to the ~1% bloom rate itself.
    if (bloom.may_contain(static_cast<HostId>(rng()))) ++false_positives;
  }
  const double rate =
      static_cast<double>(false_positives) / static_cast<double>(probes);
  // 10 bits/key with k=6 has theoretical FPR ≈ 0.8%; accept a wide band.
  EXPECT_LT(rate, 0.03) << "false positive rate " << rate;
}

TEST(LsmBloom, SerializationRoundTripsAndRejectsCorruption) {
  Bloom bloom(100, 10);
  for (HostId i = 0; i < 100; ++i) bloom.add(i * 977);
  const std::string bytes = bloom.serialize();
  const Bloom back = Bloom::deserialize(bytes);
  for (HostId i = 0; i < 100; ++i) {
    EXPECT_TRUE(back.may_contain(i * 977));
  }
  EXPECT_THROW(
      Bloom::deserialize(std::string_view(bytes).substr(0, bytes.size() / 2)),
      CorruptBlock);
}

// --- miner spill differential --------------------------------------------

std::string snapshot_bytes(mining::IncrementalRuleMiner& miner) {
  std::ostringstream out;
  miner.snapshot().save(out);
  return out.str();
}

trace::QueryReplyPair pair_at(std::uint32_t source, std::uint32_t neighbor,
                              double time) {
  trace::QueryReplyPair pair{};
  pair.source_host = source;
  pair.replying_neighbor = neighbor;
  pair.query = source;
  pair.time = time;
  return pair;
}

TEST(LsmSpill, MinerSnapshotsAreByteIdenticalWithAndWithoutSpilling) {
  ScopedTempDir tmp("aar_lsm_spill");
  const mining::MinerConfig config{.window = 256, .min_support = 2};
  mining::IncrementalRuleMiner plain(config);
  mining::IncrementalRuleMiner spilling(config);
  Store sink(tmp.path("sink"), {.memtable_bytes = 512});
  spilling.attach_spill(&sink);

  util::Rng rng(2024);
  double clock = 0.0;
  const auto step = [&](std::size_t pairs) {
    for (std::size_t i = 0; i < pairs; ++i) {
      const auto source = static_cast<std::uint32_t>(1 + rng.below(40));
      const auto neighbor = static_cast<std::uint32_t>(1 + rng.below(12));
      const trace::QueryReplyPair pair = pair_at(source, neighbor, clock);
      clock += 1.0;
      plain.add(pair);
      spilling.add(pair);
      // spill_cold only evicts antecedents already captured by a snapshot
      // (dirty ones still owe the ruleset a rebuild), so snapshot on a
      // cadence — both miners, to keep them in lockstep — then spill
      // aggressively: at most 8 antecedents stay resident, so most
      // touches go through the restore path.
      if (i % 16 == 15) {
        ASSERT_EQ(snapshot_bytes(spilling), snapshot_bytes(plain));
        spilling.spill_cold(8);
      }
    }
    ASSERT_EQ(snapshot_bytes(spilling), snapshot_bytes(plain));
    ASSERT_EQ(plain.distinct_antecedents(), spilling.distinct_antecedents());
  };

  step(400);  // window churn: evictions decrement restored counts
  EXPECT_GT(sink.stats().flushes + sink.stats().memtable_entries, 0u);

  // purge_host: a bulk recount path that must discard sink state.
  plain.purge_host(5);
  spilling.purge_host(5);
  ASSERT_EQ(snapshot_bytes(spilling), snapshot_bytes(plain));
  step(200);

  // clear: the other bulk path.
  plain.clear();
  spilling.clear();
  ASSERT_EQ(snapshot_bytes(spilling), snapshot_bytes(plain));
  step(200);

  EXPECT_GT(spilling.spilled_antecedents() + sink.stats().entries_on_disk,
            0u);
}

// --- background compaction (the TSan target) ------------------------------

TEST(LsmStoreThreads, BackgroundCompactionRacesWriters) {
  ScopedTempDir tmp("aar_lsm_bg");
  ShadowMap expected;
  {
    StoreOptions options;
    options.memtable_bytes = 1024;
    options.background_compaction = true;
    options.compaction_interval_ms = 1;
    Store store(tmp.path("db"), options);
    std::vector<std::thread> writers;
    const int kThreads = 4;
    const int kPerThread = 3000;
    for (int t = 0; t < kThreads; ++t) {
      writers.emplace_back([&store, t] {
        for (int i = 0; i < kPerThread; ++i) {
          store.add(static_cast<HostId>(t), static_cast<HostId>(i % 17), 1);
        }
      });
    }
    for (int t = 0; t < kThreads; ++t) {
      for (int i = 0; i < kPerThread; ++i) {
        expected.add(static_cast<HostId>(t), static_cast<HostId>(i % 17), 1);
      }
    }
    for (std::thread& w : writers) w.join();
    store.flush();
    EXPECT_EQ(store.dump_text(), expected.dump_text());
  }  // dtor joins the compaction thread
  Store reopened(tmp.path("db"));
  EXPECT_EQ(reopened.dump_text(), expected.dump_text());
}

}  // namespace
}  // namespace aar::lsm
