// Property tests for search robustness under faults, the zero-fault
// differential (FaultPlan::none() is bit-for-bit the pre-fault simulator),
// and the stale-rule churn regression (replace_peer purges mined rules that
// route to the departed NodeId).

#include <gtest/gtest.h>

#include <memory>

#include "fault/fault.hpp"
#include "mining/incremental_miner.hpp"
#include "overlay/assoc_policy.hpp"
#include "overlay/fault_experiment.hpp"
#include "overlay/network.hpp"
#include "overlay/shortcuts.hpp"
#include "overlay/topology.hpp"

namespace aar::overlay {
namespace {

NetworkConfig small_config(std::uint64_t seed) {
  NetworkConfig config;
  config.seed = seed;
  config.files_per_node = 8;
  config.content.files = 400;
  config.content.categories = 10;
  return config;
}

Network make_ba_network(std::size_t nodes, std::uint64_t seed,
                        const PolicyFactory& factory) {
  util::Rng rng(seed);
  Graph graph = make_barabasi_albert(nodes, 3, rng);
  return Network(small_config(seed + 1), std::move(graph), factory);
}

PolicyFactory flooding_factory() {
  return [](NodeId) { return std::make_unique<FloodingPolicy>(); };
}

PolicyFactory association_factory() {
  return [](NodeId) { return std::make_unique<AssociationRoutingPolicy>(); };
}

TEST(FaultProperties, RetryBudgetAndBackoffInvariants) {
  Network net = make_ba_network(120, 5, association_factory());
  fault::FaultPlan plan;
  plan.drop = 0.2;
  plan.max_delay = 2;
  net.install_faults(
      std::make_unique<fault::FaultInjector>(plan, fault::FaultSchedule{}, 5,
                                             net.num_nodes()));

  SearchOptions options;
  options.ttl = 5;
  options.timeout_stamps = 40;
  options.max_retries = 3;
  options.backoff_base = 2;
  options.backoff_jitter = 2;

  util::Rng driver(99);
  std::size_t retried = 0, timed_out = 0, degraded = 0;
  for (int i = 0; i < 400; ++i) {
    const auto origin = static_cast<NodeId>(driver.below(net.num_nodes()));
    const SearchOutcome out =
        net.search(origin, net.sample_target(origin), options);

    // Retries never exceed the budget, and every retry is stamped.
    EXPECT_LE(out.retries_used, options.max_retries);
    EXPECT_EQ(out.retry_stamps.size(), out.retries_used);
    // Backoff stamps strictly increase (exponential base clamped >= 1).
    for (std::size_t r = 1; r < out.retry_stamps.size(); ++r) {
      EXPECT_LT(out.retry_stamps[r - 1], out.retry_stamps[r]);
    }
    // The virtual clock respects the timeout budget...
    EXPECT_LE(out.elapsed_stamps, options.timeout_stamps);
    // ...and timing out precludes reporting a hit.
    if (out.timed_out) EXPECT_FALSE(out.hit);
    // The final forced flood is always accounted as a fallback.
    if (out.degraded_to_flood) EXPECT_TRUE(out.used_fallback);

    retried += out.retries_used > 0 ? 1 : 0;
    timed_out += out.timed_out ? 1 : 0;
    degraded += out.degraded_to_flood ? 1 : 0;
  }
  // Under 20% loss the ladder must actually engage.
  EXPECT_GT(retried, 0u);
  EXPECT_GT(degraded, 0u);
  (void)timed_out;  // can legitimately be zero at this loss rate
}

TEST(FaultProperties, TimedOutImpliesMissEvenUnderTinyBudgets) {
  Network net = make_ba_network(120, 6, flooding_factory());
  fault::FaultPlan plan;
  plan.max_delay = 6;  // delays make tiny budgets bite
  net.install_faults(
      std::make_unique<fault::FaultInjector>(plan, fault::FaultSchedule{}, 6,
                                             net.num_nodes()));
  SearchOptions options;
  options.ttl = 6;
  options.timeout_stamps = 3;
  options.max_retries = 1;

  util::Rng driver(7);
  std::size_t timeouts = 0;
  for (int i = 0; i < 200; ++i) {
    const auto origin = static_cast<NodeId>(driver.below(net.num_nodes()));
    const SearchOutcome out =
        net.search(origin, net.sample_target(origin), options);
    if (out.timed_out) {
      ++timeouts;
      EXPECT_FALSE(out.hit);
    }
    EXPECT_LE(out.elapsed_stamps, options.timeout_stamps);
  }
  EXPECT_GT(timeouts, 0u);
}

TEST(FaultProperties, CrashedOriginSearchesNothing) {
  Network net = make_ba_network(60, 8, flooding_factory());
  fault::FaultPlan plan;
  plan.peers.push_back({.node = 11, .state = fault::PeerState::crashed});
  net.install_faults(
      std::make_unique<fault::FaultInjector>(plan, fault::FaultSchedule{}, 8,
                                             net.num_nodes()));
  const SearchOutcome out = net.search(11, net.sample_target(11), {.ttl = 5});
  EXPECT_FALSE(out.hit);
  EXPECT_EQ(out.query_messages, 0u);
  EXPECT_EQ(out.nodes_reached, 0u);
}

TEST(FaultProperties, FreeRiderForwardsButNeverServes) {
  // Line 0 - 1 - 2: node 1 free-rides.  A file only node 1 holds is
  // unfindable; a file node 2 holds is still found *through* node 1.
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  Network net(small_config(3), std::move(g), flooding_factory());

  workload::FileId only_at_1 = workload::kNoFile;
  for (const workload::FileId f : net.peer(1).store.files()) {
    if (!net.peer(0).store.has(f) && !net.peer(2).store.has(f)) {
      only_at_1 = f;
      break;
    }
  }
  ASSERT_NE(only_at_1, workload::kNoFile);
  workload::FileId at_2 = workload::kNoFile;
  for (const workload::FileId f : net.peer(2).store.files()) {
    if (!net.peer(0).store.has(f) && !net.peer(1).store.has(f)) {
      at_2 = f;
      break;
    }
  }
  ASSERT_NE(at_2, workload::kNoFile);

  EXPECT_TRUE(net.search(0, only_at_1, {.ttl = 3}).hit);  // sanity, no faults

  fault::FaultPlan plan;
  plan.peers.push_back({.node = 1, .state = fault::PeerState::free_riding});
  net.install_faults(std::make_unique<fault::FaultInjector>(
      plan, fault::FaultSchedule{}, 3, net.num_nodes()));
  EXPECT_FALSE(net.search(0, only_at_1, {.ttl = 3}).hit);
  EXPECT_TRUE(net.search(0, at_2, {.ttl = 3}).hit);  // forwarded through 1
}

TEST(FaultProperties, ZeroFaultInjectorIsBitForBitTransparent) {
  // The acceptance differential: FaultPlan::none() + empty schedule must
  // reproduce the injector-free simulator exactly — same outcome stream,
  // byte for byte — on the N1 bench's topology (BA, association policy),
  // including the retry ladder and timeout paths (jitter 0: the only knob
  // that would draw from a different rng stream).
  fault::Scenario scenario;
  scenario.nodes = 2'000;  // bench_n1's network size
  scenario.attach = 3;
  scenario.warmup = 400;
  scenario.queries = 300;
  scenario.epochs = 2;
  scenario.churn = 25;
  scenario.policy = "association";
  scenario.timeout = 64;
  scenario.retries = 2;
  scenario.jitter = 0;
  scenario.plan = fault::FaultPlan::none();

  const FaultRunResult with_injector = run_fault_scenario(scenario, 7, true);
  const FaultRunResult without = run_fault_scenario(scenario, 7, false);
  EXPECT_EQ(with_injector.outcome_bytes, without.outcome_bytes);
  EXPECT_EQ(with_injector.outcome_hash, without.outcome_hash);
  std::uint64_t dropped = 0;
  for (const FaultEpochStats& e : with_injector.epochs) dropped += e.dropped;
  EXPECT_EQ(dropped, 0u);
}

TEST(FaultProperties, DropZeroPlanStillLosesNothing) {
  // drop 0 with other fault machinery active (schedule, states) must not
  // lose a single message to the probabilistic paths.
  fault::Scenario scenario;
  scenario.nodes = 150;
  scenario.warmup = 100;
  scenario.queries = 150;
  scenario.epochs = 2;
  scenario.policy = "flooding";
  scenario.plan.drop = 0.0;
  scenario.plan.duplicate = 0.0;

  const FaultRunResult run = run_fault_scenario(scenario, 21, true);
  std::uint64_t dropped = 0;
  for (const FaultEpochStats& e : run.epochs) dropped += e.dropped;
  EXPECT_EQ(dropped, 0u);
}

// --- stale-rule churn regression ------------------------------------------

TEST(ChurnStaleRules, PurgeHostDropsObservationsNamingTheHost) {
  mining::IncrementalRuleMiner miner({.window = 64, .min_support = 2});
  for (int i = 0; i < 6; ++i) {
    miner.add({.time = 0.0, .guid = 1, .source_host = 2, .replying_neighbor = 1});
    miner.add({.time = 0.0, .guid = 2, .source_host = 3, .replying_neighbor = 4});
  }
  miner.snapshot();
  ASSERT_FALSE(miner.ruleset().consequents(2).empty());
  ASSERT_FALSE(miner.ruleset().consequents(3).empty());

  EXPECT_EQ(miner.purge_host(1), 6u);
  miner.snapshot();
  // Every observation naming host 1 is gone; unrelated rules survive.
  EXPECT_TRUE(miner.ruleset().consequents(2).empty());
  ASSERT_FALSE(miner.ruleset().consequents(3).empty());
  EXPECT_EQ(miner.ruleset().consequents(3)[0].neighbor, 4u);

  EXPECT_EQ(miner.purge_host(99), 0u);  // unknown host: no-op
}

TEST(ChurnStaleRules, ReplacePeerPurgesRulesRoutingToDeadNodeId) {
  // Regression: before the purge hook, Network::churn() left every other
  // node's mined rules pointing at the departed NodeId — queries kept
  // rule-routing to a fresh stranger that never earned the rule.
  Graph g(5);  // star around 0, plus 2-4 so 0 has multiple neighbors
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(2, 4);
  AssociationPolicyConfig config;
  config.rebuild_every = 4;
  config.min_support = 2;
  Network net(small_config(9), std::move(g), [config](NodeId) {
    return std::make_unique<AssociationRoutingPolicy>(config);
  });

  auto& policy = dynamic_cast<AssociationRoutingPolicy&>(net.policy(0));
  Query query;
  query.guid = 1;
  query.origin = 2;
  for (int i = 0; i < 8; ++i) {
    // Replies flowing 1 -> 0 -> 2 teach node 0 the rule {from 2} -> {1}.
    policy.on_reply_path(query, 0, 2, 1);
  }
  ASSERT_FALSE(policy.rules().consequents(2).empty());
  ASSERT_EQ(policy.rules().consequents(2)[0].neighbor, 1u);

  net.replace_peer(1, 1);

  // The purge hook must have scrubbed the rule at every *other* node.
  const auto& after = dynamic_cast<AssociationRoutingPolicy&>(net.policy(0));
  EXPECT_TRUE(after.rules().consequents(2).empty());

  // And routing from node 0 no longer emits the dead NodeId.
  std::vector<NodeId> out;
  util::Rng rng(1);
  const std::vector<NodeId> neighbors(net.graph().neighbors(0).begin(),
                                      net.graph().neighbors(0).end());
  dynamic_cast<AssociationRoutingPolicy&>(net.policy(0))
      .route(query, 0, 2, neighbors, rng, out);
  for (const NodeId target : out) {
    EXPECT_NE(target, 1u) << "routed to the churned-out NodeId";
  }
}

TEST(ChurnStaleRules, ShortcutListsAlsoPurged) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  Network net(small_config(12), std::move(g), [](NodeId) {
    return std::make_unique<InterestShortcutsPolicy>();
  });
  auto& policy = dynamic_cast<InterestShortcutsPolicy&>(net.policy(0));
  Query query;
  query.origin = 0;
  policy.on_search_result(query, 0, true, 2);
  policy.on_search_result(query, 0, true, 3);
  ASSERT_EQ(policy.shortcuts().size(), 2u);

  net.replace_peer(2, 1);
  EXPECT_EQ(policy.shortcuts().size(), 1u);
  EXPECT_EQ(policy.shortcuts()[0], 3u);
}

}  // namespace
}  // namespace aar::overlay
