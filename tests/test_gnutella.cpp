#include "core/ruleset.hpp"
#include "gnutella/capture.hpp"
#include "gnutella/codec.hpp"

#include <gtest/gtest.h>

namespace aar::gnutella {
namespace {

// --- codec round trips ---------------------------------------------------------

TEST(Codec, QueryRoundTrip) {
  const Message original = make_query(make_wire_guid(1), 7, 100, "led zeppelin");
  const auto bytes = serialize(original);
  const ParseResult result = parse(bytes);
  ASSERT_TRUE(result.ok()) << to_string(result.error);
  EXPECT_EQ(result.consumed, bytes.size());
  EXPECT_EQ(result.message.header.guid, original.header.guid);
  EXPECT_EQ(result.message.header.type, MessageType::kQuery);
  EXPECT_EQ(result.message.header.ttl, 7);
  EXPECT_EQ(result.message.query.min_speed, 100);
  EXPECT_EQ(result.message.query.search, "led zeppelin");
}

TEST(Codec, EmptySearchStringRoundTrips) {
  const Message original = make_query(make_wire_guid(2), 3, 0, "");
  const ParseResult result = parse(serialize(original));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.message.query.search, "");
}

TEST(Codec, QueryHitRoundTrip) {
  std::vector<HitResult> results{
      {.file_index = 10, .file_size = 1'024, .file_name = "song.mp3"},
      {.file_index = 99, .file_size = 2'048, .file_name = "album/track 02.mp3"},
  };
  Message original =
      make_query_hit(make_wire_guid(3), 5, make_wire_guid(77), results);
  original.query_hit.port = 6347;
  original.query_hit.ip = 0x0a000001;
  original.query_hit.speed = 56;
  const ParseResult parsed = parse(serialize(original));
  ASSERT_TRUE(parsed.ok()) << to_string(parsed.error);
  const QueryHit& hit = parsed.message.query_hit;
  ASSERT_EQ(hit.results.size(), 2u);
  EXPECT_EQ(hit.results[0].file_name, "song.mp3");
  EXPECT_EQ(hit.results[1].file_index, 99u);
  EXPECT_EQ(hit.results[1].file_name, "album/track 02.mp3");
  EXPECT_EQ(hit.servent_guid, make_wire_guid(77));
  EXPECT_EQ(hit.port, 6347);
  EXPECT_EQ(hit.ip, 0x0a000001u);
}

TEST(Codec, PingPongRoundTrip) {
  const Message ping = make_ping(make_wire_guid(4), 7);
  const ParseResult ping_result = parse(serialize(ping));
  ASSERT_TRUE(ping_result.ok());
  EXPECT_EQ(ping_result.message.header.type, MessageType::kPing);
  EXPECT_EQ(ping_result.message.header.payload_length, 0u);

  Pong pong{.port = 6346, .ip = 0x7f000001, .shared_files = 321,
            .shared_kb = 65'536};
  const ParseResult pong_result =
      parse(serialize(make_pong(make_wire_guid(4), 6, pong)));
  ASSERT_TRUE(pong_result.ok());
  EXPECT_EQ(pong_result.message.pong.shared_files, 321u);
  EXPECT_EQ(pong_result.message.pong.shared_kb, 65'536u);
}

TEST(Codec, TruncatedHeaderReported) {
  const auto bytes = serialize(make_ping(make_wire_guid(5), 7));
  const ParseResult result =
      parse(std::span(bytes).subspan(0, Header::kSize - 1));
  EXPECT_EQ(result.error, ParseError::kTruncatedHeader);
}

TEST(Codec, TruncatedPayloadReported) {
  const auto bytes = serialize(make_query(make_wire_guid(6), 7, 0, "abc"));
  const ParseResult result = parse(std::span(bytes).first(bytes.size() - 2));
  EXPECT_EQ(result.error, ParseError::kTruncatedPayload);
}

TEST(Codec, UnknownTypeReported) {
  auto bytes = serialize(make_ping(make_wire_guid(7), 7));
  bytes[16] = 0x55;  // not a 0.4 descriptor
  EXPECT_EQ(parse(bytes).error, ParseError::kUnknownType);
}

TEST(Codec, OversizedPayloadRejected) {
  auto bytes = serialize(make_ping(make_wire_guid(8), 7));
  bytes[19] = 0xff;  // payload length bytes (LE)
  bytes[20] = 0xff;
  bytes[21] = 0xff;
  bytes[22] = 0x0f;
  EXPECT_EQ(parse(bytes).error, ParseError::kOversizedPayload);
}

TEST(Codec, UnterminatedQueryStringIsMalformed) {
  Message query = make_query(make_wire_guid(9), 7, 0, "abc");
  auto bytes = serialize(query);
  bytes.pop_back();           // drop the NUL
  bytes[19] -= 1;             // fix declared payload length
  const ParseResult result = parse(bytes);
  EXPECT_EQ(result.error, ParseError::kMalformedPayload);
}

TEST(Codec, FoldGuidDistinguishes) {
  EXPECT_EQ(fold_guid(make_wire_guid(1)), fold_guid(make_wire_guid(1)));
  EXPECT_NE(fold_guid(make_wire_guid(1)), fold_guid(make_wire_guid(2)));
}

// --- frame decoder ---------------------------------------------------------------

TEST(FrameDecoder, ReassemblesSplitStream) {
  const auto a = serialize(make_query(make_wire_guid(10), 7, 0, "first"));
  const auto b = serialize(make_query(make_wire_guid(11), 7, 0, "second"));
  std::vector<std::uint8_t> stream = a;
  stream.insert(stream.end(), b.begin(), b.end());

  FrameDecoder decoder;
  // Feed in awkward 5-byte chunks.
  for (std::size_t i = 0; i < stream.size(); i += 5) {
    decoder.feed(std::span(stream).subspan(i, std::min<std::size_t>(
                                                  5, stream.size() - i)));
  }
  const auto first = decoder.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->query.search, "first");
  const auto second = decoder.next();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->query.search, "second");
  EXPECT_FALSE(decoder.next().has_value());
  EXPECT_EQ(decoder.malformed_frames(), 0u);
}

TEST(FrameDecoder, WaitsForMoreBytes) {
  const auto bytes = serialize(make_query(make_wire_guid(12), 7, 0, "partial"));
  FrameDecoder decoder;
  decoder.feed(std::span(bytes).first(10));
  EXPECT_FALSE(decoder.next().has_value());
  decoder.feed(std::span(bytes).subspan(10));
  EXPECT_TRUE(decoder.next().has_value());
}

TEST(FrameDecoder, ResynchronizesPastGarbageFrames) {
  auto garbage = serialize(make_ping(make_wire_guid(13), 7));
  garbage[16] = 0x77;  // unknown type
  const auto good = serialize(make_query(make_wire_guid(14), 7, 0, "ok"));
  FrameDecoder decoder;
  decoder.feed(garbage);
  decoder.feed(good);
  const auto message = decoder.next();
  ASSERT_TRUE(message.has_value());
  EXPECT_EQ(message->query.search, "ok");
  EXPECT_EQ(decoder.malformed_frames(), 1u);
}

// --- capture node ------------------------------------------------------------------

CaptureNode make_node() {
  return CaptureNode({1, 2, 3}, [] {
    static double t = 0.0;
    return t += 0.001;
  });
}

TEST(CaptureNode, RelaysQueriesToOtherNeighbors) {
  CaptureNode node = make_node();
  const RelayDecision decision =
      node.on_message(2, make_query(make_wire_guid(20), 7, 0, "x"));
  EXPECT_FALSE(decision.drop);
  EXPECT_EQ(decision.forward_to, (std::vector<NeighborId>{1, 3}));
  EXPECT_EQ(node.queries_seen(), 1u);
}

TEST(CaptureNode, DropsDuplicateGuids) {
  CaptureNode node = make_node();
  const Message query = make_query(make_wire_guid(21), 7, 0, "x");
  node.on_message(1, query);
  const RelayDecision second = node.on_message(2, query);
  EXPECT_TRUE(second.drop);
  EXPECT_EQ(node.duplicates_dropped(), 1u);
  // Both sightings were captured (the paper's raw table had duplicates).
  EXPECT_EQ(node.database().queries().size(), 2u);
}

TEST(CaptureNode, DropsExpiredTtl) {
  CaptureNode node = make_node();
  const RelayDecision decision =
      node.on_message(1, make_query(make_wire_guid(22), 1, 0, "x"));
  EXPECT_TRUE(decision.drop);
  EXPECT_EQ(node.expired_dropped(), 1u);
}

TEST(CaptureNode, RoutesHitsAlongReversePath) {
  CaptureNode node = make_node();
  const WireGuid guid = make_wire_guid(23);
  node.on_message(2, make_query(guid, 7, 0, "song"));
  const RelayDecision decision = node.on_message(
      3, make_query_hit(guid, 7, make_wire_guid(99),
                        {{.file_index = 1, .file_size = 1, .file_name = "song"}}));
  EXPECT_FALSE(decision.drop);
  EXPECT_EQ(decision.forward_to, (std::vector<NeighborId>{2}));
  EXPECT_EQ(node.hits_seen(), 1u);
}

TEST(CaptureNode, DropsHitsWithoutRoute) {
  CaptureNode node = make_node();
  const RelayDecision decision = node.on_message(
      3, make_query_hit(make_wire_guid(24), 7, make_wire_guid(99), {}));
  EXPECT_TRUE(decision.drop);
  EXPECT_EQ(decision.drop_reason, "no reverse route");
}

TEST(CaptureNode, CaptureFeedsThePipeline) {
  CaptureNode node = make_node();
  // Two queries from neighbor 1, answered through neighbor 3.
  for (std::uint64_t i = 0; i < 8; ++i) {
    const WireGuid guid = make_wire_guid(100 + i);
    node.on_message(1, make_query(guid, 7, 0, "jazz"));
    node.on_message(
        3, make_query_hit(guid, 7, make_wire_guid(7'000),
                          {{.file_index = 1, .file_size = 9,
                            .file_name = "jazz"}}));
  }
  trace::Database& db = node.database();
  EXPECT_EQ(db.join(), 8u);
  for (const trace::QueryReplyPair& pair : db.pairs()) {
    EXPECT_EQ(pair.source_host, 1u);
    EXPECT_EQ(pair.replying_neighbor, 3u);
  }
  // The captured pairs mine into the expected rule.
  const core::RuleSet rules = core::RuleSet::build(db.pairs(), 5);
  EXPECT_TRUE(rules.matches(1, 3));
}

TEST(CaptureNode, NormalizeQueryIsCaseInsensitive) {
  EXPECT_EQ(normalize_query("Led Zeppelin"), normalize_query("led zeppelin"));
  EXPECT_NE(normalize_query("a"), normalize_query("b"));
}

// --- relay header rewrite (the 0.4 TTL/hops rules) -----------------------

TEST(CaptureNode, RelayDecrementsTtlAndIncrementsHops) {
  CaptureNode node = make_node();
  const Message query = make_query(make_wire_guid(40), 5, 0, "x");
  const RelayDecision decision = node.on_message(1, query);
  ASSERT_FALSE(decision.drop);
  EXPECT_EQ(decision.forward_header.ttl, 4);
  EXPECT_EQ(decision.forward_header.hops, 1);
  // Everything else is untouched: same descriptor, one hop older.
  EXPECT_EQ(decision.forward_header.guid, query.header.guid);
  EXPECT_EQ(decision.forward_header.type, MessageType::kQuery);
}

TEST(CaptureNode, RelayedHitCarriesRewrittenHeader) {
  CaptureNode node = make_node();
  const WireGuid guid = make_wire_guid(41);
  node.on_message(2, make_query(guid, 7, 0, "song"));
  Message hit = make_query_hit(
      guid, 6, make_wire_guid(99),
      {{.file_index = 1, .file_size = 1, .file_name = "song"}});
  hit.header.hops = 2;
  const RelayDecision decision = node.on_message(3, hit);
  ASSERT_FALSE(decision.drop);
  EXPECT_EQ(decision.forward_header.ttl, 5);
  EXPECT_EQ(decision.forward_header.hops, 3);
}

TEST(CaptureNode, RelayedPingCarriesRewrittenHeader) {
  CaptureNode node = make_node();
  const RelayDecision decision =
      node.on_message(1, make_ping(make_wire_guid(42), 4));
  ASSERT_FALSE(decision.drop);
  EXPECT_EQ(decision.forward_header.ttl, 3);
  EXPECT_EQ(decision.forward_header.hops, 1);
}

TEST(CaptureNode, RelayedBytesCarryRewrittenHeader) {
  // The wire-level regression: the frame a node actually emits must differ
  // from the frame it received in exactly TTL-1 / hops+1.
  CaptureNode node = make_node();
  const Message query = make_query(make_wire_guid(43), 7, 10, "the wall");
  const RelayDecision decision = node.on_message(2, query);
  ASSERT_FALSE(decision.drop);
  const auto bytes = serialize(relayed_message(query, decision));
  const ParseResult parsed = parse(bytes);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.message.header.ttl, 6);
  EXPECT_EQ(parsed.message.header.hops, 1);
  EXPECT_EQ(parsed.message.header.guid, query.header.guid);
  EXPECT_EQ(parsed.message.query.search, "the wall");
  EXPECT_EQ(parsed.message.query.min_speed, 10);
}

TEST(CaptureNode, RelayedQueryExpiresHopByHop) {
  // Drop-at-zero across a chain of relays: ttl 3 survives two rewrites and
  // the third node refuses to forward it further.
  const Message origin = make_query(make_wire_guid(44), 3, 0, "x");

  CaptureNode first = make_node();
  const RelayDecision hop1 = first.on_message(1, origin);
  ASSERT_FALSE(hop1.drop);
  const Message after1 = relayed_message(origin, hop1);
  EXPECT_EQ(after1.header.ttl, 2);

  CaptureNode second = make_node();
  const RelayDecision hop2 = second.on_message(1, after1);
  ASSERT_FALSE(hop2.drop);
  const Message after2 = relayed_message(after1, hop2);
  EXPECT_EQ(after2.header.ttl, 1);
  EXPECT_EQ(after2.header.hops, 2);

  CaptureNode third = make_node();
  const RelayDecision hop3 = third.on_message(1, after2);
  EXPECT_TRUE(hop3.drop);
  EXPECT_EQ(hop3.drop_reason, "TTL expired");
}

TEST(CaptureNode, NeighborChurnChangesFloodSet) {
  CaptureNode node = make_node();
  node.remove_neighbor(3);
  node.add_neighbor(7);
  node.add_neighbor(7);  // idempotent
  const RelayDecision decision =
      node.on_message(2, make_query(make_wire_guid(45), 7, 0, "x"));
  EXPECT_EQ(decision.forward_to, (std::vector<NeighborId>{1, 7}));
  EXPECT_EQ(node.neighbors(), (std::vector<NeighborId>{1, 2, 7}));
}

}  // namespace
}  // namespace aar::gnutella
