// Multi-node cluster tests (docs/NODE.md "Peering"): three real aar_node
// processes ring-peered over loopback — queries replayed into node A,
// hits into node C, cross-process rule-routing asserted on all three via
// the admin endpoint; then C is frozen (SIGSTOP) and the survivors must
// declare the link dead through the missed-pong budget and purge C's
// consequents from their published rule sets.  A second, in-process suite
// pins the determinism regression: the same seed and lockstep workload
// against a 2-node pair twice produces identical stats and rule bytes on
// both nodes.
//
// The daemon mines pairs with the ingress *connection* as antecedent, so a
// closed load-generator socket purges its own rules.  Both tests therefore
// hold their ingress sockets open across the assertion window: the e2e
// drives its rule-building traffic from persistent raw sockets after the
// replay phase, and the determinism pair captures stats/rules before any
// teardown.

#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ruleset.hpp"
#include "gnutella/codec.hpp"
#include "node/daemon.hpp"
#include "node/net.hpp"
#include "node/replay.hpp"

namespace aar::node {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

std::string admin_request(std::uint16_t port, const std::string& command) {
  Fd fd = connect_tcp("127.0.0.1", port);
  const std::string line = command + "\n";
  std::span<const std::uint8_t> remaining(
      reinterpret_cast<const std::uint8_t*>(line.data()), line.size());
  while (!remaining.empty()) {
    const IoResult r = write_some(fd.get(), remaining);
    if (r.status == IoStatus::closed) return {};
    remaining = remaining.subspan(r.n);
  }
  std::string reply;
  std::vector<std::uint8_t> buffer(16 * 1024);
  const auto deadline = Clock::now() + 10s;
  while (Clock::now() < deadline) {
    const IoResult r = read_some(fd.get(), buffer);
    if (r.status == IoStatus::closed) break;
    if (r.status == IoStatus::would_block) {
      std::this_thread::sleep_for(1ms);
      continue;
    }
    reply.append(reinterpret_cast<const char*>(buffer.data()), r.n);
  }
  return reply;
}

/// Value of a "name value" line in an admin stats reply; 0 when absent.
std::uint64_t stat_value(const std::string& text, const std::string& name) {
  const std::string needle = name + " ";
  std::size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
    }
    pos += needle.size();
  }
  return 0;
}

std::size_t rule_count(const std::string& rules_text) {
  std::istringstream in(rules_text);
  return core::RuleSet::load(in).num_rules();
}

/// True when the serialized rule CSV ("antecedent,consequent,support")
/// names `id` as any rule's consequent.
bool has_consequent(const std::string& rules_text, std::uint64_t id) {
  std::istringstream in(rules_text);
  std::string line;
  std::getline(in, line);  // header
  const std::string needle = "," + std::to_string(id) + ",";
  while (std::getline(in, line)) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

/// Blocking send of a whole frame on a raw test socket.
void send_all(Fd& fd, const std::vector<std::uint8_t>& bytes) {
  std::span<const std::uint8_t> remaining(bytes.data(), bytes.size());
  while (!remaining.empty()) {
    const IoResult r = write_some(fd.get(), remaining);
    ASSERT_NE(r.status, IoStatus::closed);
    if (r.status == IoStatus::would_block) {
      std::this_thread::sleep_for(100us);
      continue;
    }
    remaining = remaining.subspan(r.n);
  }
}

/// Discard everything the daemons relayed back so their sends never stall.
void drain_fds(std::vector<Fd>& fds) {
  std::vector<std::uint8_t> buffer(16 * 1024);
  for (Fd& fd : fds) {
    if (!fd.valid()) continue;
    for (;;) {
      const IoResult r = read_some(fd.get(), buffer);
      if (r.status != IoStatus::ok || r.n == 0) break;
    }
  }
}

/// One aar_node serve process, stdout piped back so the test can read the
/// ephemeral "listening P" / "admin P" banner.
class NodeProcess {
 public:
  explicit NodeProcess(std::vector<std::string> args) {
    int fds[2];
    if (::pipe(fds) != 0) return;
    pid_ = ::fork();
    if (pid_ < 0) return;
    if (pid_ == 0) {
      ::close(fds[0]);
      ::dup2(fds[1], STDOUT_FILENO);
      ::close(fds[1]);
      std::vector<char*> argv;
      std::string binary = AAR_NODE_BINARY;
      argv.push_back(binary.data());
      for (std::string& arg : args) argv.push_back(arg.data());
      argv.push_back(nullptr);
      ::execv(argv[0], argv.data());
      ::_exit(127);
    }
    ::close(fds[1]);
    out_ = fds[0];
    const std::string banner = read_until_ports();
    std::sscanf(banner.c_str(), "listening %hu\nadmin %hu", &port_, &admin_);
  }

  ~NodeProcess() { kill_now(); }

  void freeze() const { ::kill(pid_, SIGSTOP); }
  void kill_now() {
    if (pid_ > 0) {
      ::kill(pid_, SIGKILL);
      ::waitpid(pid_, nullptr, 0);
      pid_ = -1;
    }
    if (out_ >= 0) {
      ::close(out_);
      out_ = -1;
    }
  }
  /// Graceful stop: admin shutdown, then wait and require exit status 0.
  int shutdown() {
    EXPECT_EQ(admin_request(admin_, "shutdown"), "ok\n");
    int status = 0;
    ::waitpid(pid_, &status, 0);
    pid_ = -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] std::uint16_t admin() const { return admin_; }

 private:
  std::string read_until_ports() {
    std::string text;
    char byte = 0;
    const auto deadline = Clock::now() + 15s;
    while (Clock::now() < deadline) {
      pollfd waiter{.fd = out_, .events = POLLIN, .revents = 0};
      if (::poll(&waiter, 1, 100) <= 0) continue;
      const ssize_t n = ::read(out_, &byte, 1);
      if (n <= 0) break;
      text.push_back(byte);
      // Two complete lines: "listening P\nadmin P\n".
      if (byte == '\n' && text.find("admin ") != std::string::npos) break;
    }
    return text;
  }

  pid_t pid_ = -1;
  int out_ = -1;
  std::uint16_t port_ = 0;
  std::uint16_t admin_ = 0;
};

/// Poll an admin stat until `minimum` is reached or 20 s pass.
bool await_stat(std::uint16_t admin, const std::string& name,
                std::uint64_t minimum) {
  const auto deadline = Clock::now() + 20s;
  while (Clock::now() < deadline) {
    if (stat_value(admin_request(admin, "stats"), name) >= minimum) {
      return true;
    }
    std::this_thread::sleep_for(20ms);
  }
  return false;
}

TEST(NodeCluster, ThreeNodesRouteHitsAcrossProcessesAndPurgeDeadPeer) {
  // Ring topology over three real processes: B dials A, C dials A and B.
  // Fast keepalive so the frozen-peer declaration fits a test budget.
  const std::vector<std::string> base = {
      "serve",          "--port", "0",   "--admin-port",  "0",
      "--ping-interval", "100",   "--pong-budget", "2",
      "--rebuild-every", "16"};
  NodeProcess node_a(base);
  ASSERT_NE(node_a.port(), 0);
  std::vector<std::string> args_b = base;
  args_b.insert(args_b.end(),
                {"--peer", "127.0.0.1:" + std::to_string(node_a.port())});
  NodeProcess node_b(args_b);
  ASSERT_NE(node_b.port(), 0);
  // A sees B before C: the handshake wait pins A's link-id assignment, so
  // B's link is neighbor 1 on A and C's link is neighbor 2.
  ASSERT_TRUE(await_stat(node_a.admin(), "node.peer.handshakes", 1));
  std::vector<std::string> args_c = base;
  args_c.insert(args_c.end(),
                {"--peer", "127.0.0.1:" + std::to_string(node_a.port()),
                 "--peer", "127.0.0.1:" + std::to_string(node_b.port())});
  NodeProcess node_c(args_c);
  ASSERT_NE(node_c.port(), 0);
  ASSERT_TRUE(await_stat(node_a.admin(), "node.peer.handshakes", 2));
  ASSERT_TRUE(await_stat(node_b.admin(), "node.peer.handshakes", 2));
  ASSERT_TRUE(await_stat(node_c.admin(), "node.peer.handshakes", 2));
  const std::uint64_t c_link_on_a = 2;  // pinned by the handshake waits
  const std::uint64_t c_link_on_b = 2;  // B dialed A (1) before C dialed B

  // Phase 1 — 1k minable pairs: queries enter at A, hits enter at C, so
  // every matched hit and every pair A mines crossed a peered link.
  ReplayConfig load;
  load.port = node_a.port();
  load.hits_port = node_c.port();
  load.connections = 3;
  load.pairs = 1000;
  load.hosts = 12;
  load.hit_lag = 8;
  load.ttl = 4;
  load.lockstep = true;
  load.lockstep_wait_ms = 2000;
  load.drain_ms = 300;
  const ReplayStats replay = run_replay(load);
  EXPECT_GT(replay.matched_hits, 0u);
  EXPECT_EQ(replay.ttl_violations, 0u);
  EXPECT_EQ(replay.malformed, 0u);
  EXPECT_GT(replay.latency_samples, 0u);

  // Cross-node routing visible on all three admin endpoints.  A never has
  // hits injected locally, so hits_in and routed_hits there prove frames
  // crossed process boundaries and were routed by mined rules.
  const std::string stats_a = admin_request(node_a.admin(), "stats");
  EXPECT_GT(stat_value(stats_a, "node.hits_in"), 0u) << stats_a;
  EXPECT_GT(stat_value(stats_a, "node.routed_hits"), 0u) << stats_a;
  EXPECT_GT(stat_value(stats_a, "node.rule_routed"), 0u) << stats_a;
  EXPECT_GT(stat_value(stats_a, "node.pairs_mined"), 0u) << stats_a;
  const std::string stats_b = admin_request(node_b.admin(), "stats");
  EXPECT_GT(stat_value(stats_b, "node.queries_in"), 0u) << stats_b;
  const std::string stats_c = admin_request(node_c.admin(), "stats");
  EXPECT_GT(stat_value(stats_c, "node.queries_in"), 0u) << stats_c;
  EXPECT_GT(stat_value(stats_c, "node.pairs_mined"), 0u) << stats_c;

  // Phase 2 — rebuild A's rule set from sockets that stay open, so the
  // only purge that can empty it is a peer death.  Queries enter A and
  // hits enter C on persistent raw connections; A mines (ingress conn ->
  // C's link) pairs and publishes rules whose consequent is C's link.
  std::vector<Fd> query_conns;
  std::vector<Fd> hit_conns;
  for (int i = 0; i < 2; ++i) {
    query_conns.push_back(connect_tcp("127.0.0.1", node_a.port()));
    hit_conns.push_back(connect_tcp("127.0.0.1", node_c.port()));
  }
  std::uint64_t guid = 0x5eed0000;
  bool routed_via_c = false;
  const auto build_deadline = Clock::now() + 20s;
  while (!routed_via_c && Clock::now() < build_deadline) {
    for (std::uint64_t i = 0; i < 32; ++i) {
      const std::size_t conn = i % 2;
      char name[16];
      std::snprintf(name, sizeof name, "p%u",
                    static_cast<unsigned>(i % 8));
      send_all(query_conns[conn],
               gnutella::serialize(gnutella::make_query(
                   gnutella::make_wire_guid(guid + i), 4, 0, name)));
      drain_fds(query_conns);
      drain_fds(hit_conns);
      // Give the query time to flood A -> C and seed C's route table
      // before the answering hit lands there.
      std::this_thread::sleep_for(1ms);
      send_all(hit_conns[conn],
               gnutella::serialize(gnutella::make_query_hit(
                   gnutella::make_wire_guid(guid + i), 4,
                   gnutella::make_wire_guid(i % 8),
                   {gnutella::HitResult{.file_index = static_cast<std::uint32_t>(i % 8),
                                        .file_size = 1,
                                        .file_name = name}})));
      drain_fds(query_conns);
      drain_fds(hit_conns);
    }
    guid += 64;
    routed_via_c =
        has_consequent(admin_request(node_a.admin(), "rules"), c_link_on_a);
  }
  ASSERT_TRUE(routed_via_c) << admin_request(node_a.admin(), "rules");

  // Phase 3 — freeze C: its sockets stay open (the kernel keeps ACKing)
  // but pongs stop, so only the missed-pong budget can declare the links
  // dead.  The purge must drop C's consequents from A's published rules
  // while A's ingress sockets are still connected.
  node_c.freeze();
  ASSERT_TRUE(await_stat(node_a.admin(), "node.peer.missed", 1));
  const auto purge_deadline = Clock::now() + 20s;
  bool purged = false;
  while (!purged && Clock::now() < purge_deadline) {
    drain_fds(query_conns);
    purged =
        !has_consequent(admin_request(node_a.admin(), "rules"), c_link_on_a);
    if (!purged) std::this_thread::sleep_for(20ms);
  }
  EXPECT_TRUE(purged) << admin_request(node_a.admin(), "rules");
  EXPECT_TRUE(await_stat(node_b.admin(), "node.peer.missed", 1));
  EXPECT_FALSE(
      has_consequent(admin_request(node_b.admin(), "rules"), c_link_on_b));

  node_c.kill_now();
  EXPECT_EQ(node_a.shutdown(), 0);
  EXPECT_EQ(node_b.shutdown(), 0);
}

// --- determinism regression ----------------------------------------------

std::string render(const NodeStats& stats) {
  std::ostringstream out;
  out << stats.accepted << ' ' << stats.disconnects << ' ' << stats.bytes_in
      << ' ' << stats.bytes_out << ' ' << stats.messages_in << ' '
      << stats.malformed_frames << ' ' << stats.queries_in << ' '
      << stats.hits_in << ' ' << stats.pings_in << ' ' << stats.dropped
      << ' ' << stats.queries_relayed << ' ' << stats.hits_relayed << ' '
      << stats.rule_routed << ' ' << stats.flooded << ' '
      << stats.routed_hits << ' ' << stats.pairs_mined << ' '
      << stats.snapshots << ' ' << stats.send_timeouts << ' '
      << stats.peer_handshakes << ' ' << stats.peer_pongs << ' '
      << stats.peer_missed << ' ' << stats.peer_reconnects;
  return out.str();
}

/// Wait until a daemon's aggregate counters stop moving (trailing relay
/// deliveries land asynchronously after the last frame is processed).
std::string settled_render(Daemon& daemon) {
  std::string last = render(daemon.stats());
  int stable = 0;
  const auto deadline = Clock::now() + 10s;
  while (Clock::now() < deadline) {
    std::this_thread::sleep_for(20ms);
    std::string now = render(daemon.stats());
    if (now == last) {
      if (++stable >= 3) return now;
    } else {
      stable = 0;
      last = std::move(now);
    }
  }
  return last;
}

struct PairRun {
  std::string stats_a;
  std::string stats_b;
  std::string rules_a;
  std::string rules_b;
};

/// Split lockstep driver over a peered in-process pair: queries enter A on
/// raw sockets, hits enter B, and every send waits until *both* daemons
/// have fully processed the frame (the injected copy plus the copy relayed
/// across the peered link) before the next one goes out.  That serializes
/// the cross-daemon processing order, which is what makes two runs with
/// the same seed byte-comparable.
struct SplitLockstepDriver {
  SplitLockstepDriver(Daemon& daemon_a, Daemon& daemon_b)
      : a(daemon_a), b(daemon_b) {
    for (int i = 0; i < 2; ++i) {
      conns_a.push_back(connect_tcp("127.0.0.1", a.port()));
      conns_b.push_back(connect_tcp("127.0.0.1", b.port()));
    }
    // Roster settle: A accepts the two query sockets; B accepted A's peer
    // dial plus the two hit sockets.
    const auto deadline = Clock::now() + 30s;
    while ((a.stats().accepted < 2 || b.stats().accepted < 3) &&
           Clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
  }

  /// Send one frame and wait for both daemons to advance past it.
  void send(std::vector<Fd>& conns, std::size_t conn,
            const std::vector<std::uint8_t>& bytes) {
    const std::uint64_t target_a = a.messages_processed() + 1;
    const std::uint64_t target_b = b.messages_processed() + 1;
    std::span<const std::uint8_t> remaining(bytes.data(), bytes.size());
    while (!remaining.empty()) {
      const IoResult r = write_some(conns[conn].get(), remaining);
      ASSERT_NE(r.status, IoStatus::closed);
      if (r.status == IoStatus::would_block) {
        drain();
        std::this_thread::sleep_for(100us);
        continue;
      }
      remaining = remaining.subspan(r.n);
    }
    const auto deadline = Clock::now() + 30s;
    while (a.messages_processed() < target_a ||
           b.messages_processed() < target_b) {
      ASSERT_LT(Clock::now(), deadline) << "frame never crossed the pair";
      drain();
      std::this_thread::sleep_for(50us);
    }
  }

  void drain() {
    drain_fds(conns_a);
    drain_fds(conns_b);
  }

  Daemon& a;
  Daemon& b;
  std::vector<Fd> conns_a;
  std::vector<Fd> conns_b;
};

/// One 2-node lockstep session, in-process: B listens, A dials B at
/// startup, queries enter A and hits enter B.  The keepalive interval is
/// pushed past the test horizon so no wall-clock event can perturb the
/// counters, and stats/rules are captured while every socket is still
/// open — teardown purges and close-ordering races never reach the
/// compared bytes.
PairRun run_pair_session() {
  NodeConfig config_b;
  config_b.seed = 11;
  config_b.min_support = 2;
  config_b.rebuild_every = 16;
  config_b.ping_interval_ms = 600'000;
  Daemon daemon_b(config_b);
  std::thread thread_b([&] { daemon_b.run(); });

  NodeConfig config_a = config_b;
  config_a.peers = {PeerAddress{"127.0.0.1", daemon_b.port()}};
  Daemon daemon_a(config_a);
  std::thread thread_a([&] { daemon_a.run(); });

  // The peered link must be rostered on both sides before traffic lands,
  // or the flood fan-out differs run to run.
  const auto deadline = Clock::now() + 10s;
  while ((daemon_a.stats().peer_handshakes < 1 ||
          daemon_b.stats().peer_handshakes < 1) &&
         Clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_GE(daemon_a.stats().peer_handshakes, 1u);

  PairRun result;
  {
    SplitLockstepDriver driver(daemon_a, daemon_b);
    constexpr std::size_t kPairs = 400;
    constexpr std::uint32_t kHosts = 8;
    constexpr std::size_t kLag = 4;
    std::size_t next_hit = 0;
    const auto send_query = [&](std::size_t i) {
      const std::uint32_t h = static_cast<std::uint32_t>(i) % kHosts;
      char search[16];
      std::snprintf(search, sizeof search, "q%u", h);
      driver.send(driver.conns_a, h % 2,
                  gnutella::serialize(gnutella::make_query(
                      gnutella::make_wire_guid(2000 + i), 4, 0, search)));
    };
    const auto send_hit = [&](std::size_t i) {
      const std::uint32_t h = static_cast<std::uint32_t>(i) % kHosts;
      char file[16];
      std::snprintf(file, sizeof file, "f%u", h);
      driver.send(driver.conns_b, h % 2,
                  gnutella::serialize(gnutella::make_query_hit(
                      gnutella::make_wire_guid(2000 + i), 4,
                      gnutella::make_wire_guid(h),
                      {gnutella::HitResult{.file_index = h,
                                           .file_size = 1,
                                           .file_name = file}})));
    };
    for (std::size_t i = 0; i < kPairs; ++i) {
      send_query(i);
      while (next_hit + kLag <= i) send_hit(next_hit++);
    }
    while (next_hit < kPairs) send_hit(next_hit++);

    // Capture while every socket is still open and the counters are quiet.
    result.stats_a = settled_render(daemon_a);
    result.stats_b = settled_render(daemon_b);
    result.rules_a = daemon_a.rules_text();
    result.rules_b = daemon_b.rules_text();
  }
  daemon_a.stop();
  thread_a.join();
  daemon_b.stop();
  thread_b.join();
  return result;
}

TEST(NodeClusterDeterminism, SameSeedLockstepPairRunsAreByteIdentical) {
  const PairRun first = run_pair_session();
  const PairRun second = run_pair_session();
  EXPECT_EQ(first.stats_a, second.stats_a);
  EXPECT_EQ(first.stats_b, second.stats_b);
  EXPECT_EQ(first.rules_a, second.rules_a);
  EXPECT_EQ(first.rules_b, second.rules_b);
  // Both daemons must actually have mined rules for the byte comparison
  // to mean anything: A's name its peered link, B's name the hit conns.
  EXPECT_GT(rule_count(first.rules_a), 0u);
  EXPECT_GT(rule_count(first.rules_b), 0u);
}

}  // namespace
}  // namespace aar::node
