#pragma once
// Shared temp-path hygiene for the test suite.
//
// ctest runs test processes concurrently (-j), so fixed scratch names under
// /tmp let two instances truncate each other's files mid-test — the classic
// flake.  Every test that touches disk goes through one of these helpers:
//
//   * ScopedTempDir — a unique directory created at construction and
//     recursively removed at destruction.  Preferred for anything that
//     writes more than one file (lsm stores, node state dirs): cleanup is
//     one remove_all, and a crashed assertion can leak at most one
//     uniquely-named directory.
//   * unique_path(name) — a process-unique file path for single-file tests
//     that manage their own cleanup (the pre-ScopedTempDir idiom, kept for
//     tests that want the file to outlive a fixture).

#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>

namespace aar::testing {

/// Process-unique token: stable within one test binary run, distinct across
/// concurrent ctest instances.
inline const std::string& process_token() {
  static const std::string token = [] {
    std::random_device rd;
    return "aar_" + std::to_string(rd()) + "_";
  }();
  return token;
}

/// `<tmp>/aar_<random>_<name>` — unique per process, shared within it.
inline std::string unique_path(const std::string& name) {
  return (std::filesystem::temp_directory_path() / (process_token() + name))
      .string();
}

class ScopedTempDir {
 public:
  explicit ScopedTempDir(const std::string& prefix = "aar_test") {
    std::random_device rd;
    for (int attempt = 0; attempt < 16; ++attempt) {
      const std::filesystem::path candidate =
          std::filesystem::temp_directory_path() /
          (prefix + "_" + std::to_string(rd()));
      std::error_code ec;
      if (std::filesystem::create_directory(candidate, ec)) {
        dir_ = candidate;
        return;
      }
    }
    throw std::runtime_error("ScopedTempDir: no unique directory after 16 "
                             "attempts");
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);  // best effort; never throws
  }
  ScopedTempDir(const ScopedTempDir&) = delete;
  ScopedTempDir& operator=(const ScopedTempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& dir() const noexcept {
    return dir_;
  }
  /// Path of `name` inside the directory.
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

 private:
  std::filesystem::path dir_;
};

}  // namespace aar::testing
