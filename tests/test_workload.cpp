#include "workload/churn.hpp"
#include "workload/content.hpp"
#include "workload/interests.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <numeric>
#include <set>

namespace aar::workload {
namespace {

// --- InterestProfile ---------------------------------------------------------

TEST(InterestProfile, BreadthAndWeights) {
  util::Rng rng(1);
  const auto profile = InterestProfile::sample(rng, 64, 3);
  EXPECT_EQ(profile.breadth(), 3u);
  const double total = std::accumulate(profile.weights().begin(),
                                       profile.weights().end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Geometric decay: primary dominates.
  EXPECT_GT(profile.weights()[0], profile.weights()[1]);
  EXPECT_GT(profile.weights()[1], profile.weights()[2]);
}

TEST(InterestProfile, CategoriesAreDistinctAndInUniverse) {
  util::Rng rng(2);
  const auto profile = InterestProfile::sample(rng, 10, 5);
  std::set<Category> unique(profile.categories().begin(),
                            profile.categories().end());
  EXPECT_EQ(unique.size(), profile.breadth());
  for (Category cat : profile.categories()) EXPECT_LT(cat, 10u);
}

TEST(InterestProfile, BreadthClampsToUniverse) {
  util::Rng rng(3);
  const auto profile = InterestProfile::sample(rng, 2, 10);
  EXPECT_EQ(profile.breadth(), 2u);
}

TEST(InterestProfile, SamplesOnlyOwnCategories) {
  util::Rng rng(4);
  const auto profile = InterestProfile::sample(rng, 100, 3);
  for (int i = 0; i < 1'000; ++i) {
    const Category cat = profile.sample_category(rng);
    EXPECT_NE(std::find(profile.categories().begin(),
                        profile.categories().end(), cat),
              profile.categories().end());
  }
}

TEST(InterestProfile, SamplingFollowsWeights) {
  util::Rng rng(5);
  const auto profile = InterestProfile::sample(rng, 100, 2, 0.5);
  int primary = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    primary += profile.sample_category(rng) == profile.categories()[0] ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(primary) / kSamples, 2.0 / 3.0, 0.02);
}

TEST(InterestProfile, DriftKeepsPrimaryAndBreadth) {
  util::Rng rng(6);
  auto profile = InterestProfile::sample(rng, 1'000, 4);
  const Category primary = profile.categories()[0];
  for (int i = 0; i < 50; ++i) profile.drift(rng, 1'000);
  EXPECT_EQ(profile.categories()[0], primary);
  EXPECT_EQ(profile.breadth(), 4u);
  std::set<Category> unique(profile.categories().begin(),
                            profile.categories().end());
  EXPECT_EQ(unique.size(), 4u);  // still distinct
}

TEST(InterestProfile, DriftOnSingletonIsNoop) {
  util::Rng rng(7);
  auto profile = InterestProfile::sample(rng, 100, 1);
  const Category primary = profile.categories()[0];
  profile.drift(rng, 100);
  EXPECT_EQ(profile.categories()[0], primary);
}

TEST(InterestProfile, SimilarityBoundsAndIdentity) {
  util::Rng rng(8);
  const auto a = InterestProfile::sample(rng, 20, 3);
  const auto b = InterestProfile::sample(rng, 20, 3);
  EXPECT_NEAR(a.similarity(a), 1.0, 1e-12);
  const double sim = a.similarity(b);
  EXPECT_GE(sim, 0.0);
  EXPECT_LE(sim, 1.0);
  EXPECT_DOUBLE_EQ(sim, b.similarity(a));  // symmetric
}

// --- ContentCatalogue --------------------------------------------------------

TEST(ContentCatalogue, EveryFileHasCategory) {
  util::Rng rng(9);
  ContentCatalogue catalogue({.files = 500, .categories = 8}, rng);
  EXPECT_EQ(catalogue.size(), 500u);
  std::size_t total = 0;
  for (Category cat = 0; cat < 8; ++cat) {
    for (FileId file : catalogue.files_in(cat)) {
      EXPECT_EQ(catalogue.category_of(file), cat);
    }
    total += catalogue.files_in(cat).size();
  }
  EXPECT_EQ(total, 500u);  // partition
}

TEST(ContentCatalogue, SampleInReturnsRequestedCategory) {
  util::Rng rng(10);
  ContentCatalogue catalogue({.files = 2'000, .categories = 4}, rng);
  for (Category cat = 0; cat < 4; ++cat) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_EQ(catalogue.category_of(catalogue.sample_in(cat, rng)), cat);
    }
  }
}

TEST(ContentCatalogue, GlobalSamplingIsZipfSkewed) {
  util::Rng rng(11);
  ContentCatalogue catalogue({.files = 1'000, .categories = 8,
                              .popularity_skew = 1.0},
                             rng);
  int top_decile = 0;
  constexpr int kSamples = 50'000;
  for (int i = 0; i < kSamples; ++i) {
    if (catalogue.sample_global(rng) < 100) ++top_decile;
  }
  // Under Zipf(1.0) the top 10% of ranks carry far more than 10% of mass.
  EXPECT_GT(static_cast<double>(top_decile) / kSamples, 0.4);
}

TEST(LocalStore, PopulatesRequestedCount) {
  util::Rng rng(12);
  ContentCatalogue catalogue({.files = 5'000, .categories = 16}, rng);
  const auto profile = InterestProfile::sample(rng, 16, 3);
  LocalStore store;
  store.populate(catalogue, profile, 40, rng);
  EXPECT_EQ(store.size(), 40u);
  for (FileId file : store.files()) EXPECT_LT(file, 5'000u);
}

TEST(LocalStore, ContentMatchesInterests) {
  util::Rng rng(13);
  ContentCatalogue catalogue({.files = 5'000, .categories = 50}, rng);
  const auto profile = InterestProfile::sample(rng, 50, 2);
  LocalStore store;
  store.populate(catalogue, profile, 50, rng);
  std::size_t in_profile = 0;
  for (FileId file : store.files()) {
    const Category cat = catalogue.category_of(file);
    if (std::find(profile.categories().begin(), profile.categories().end(),
                  cat) != profile.categories().end()) {
      ++in_profile;
    }
  }
  // Interest locality: everything the peer shares is from its categories.
  EXPECT_EQ(in_profile, store.size());
}

TEST(LocalStore, HasAndInsert) {
  LocalStore store;
  EXPECT_FALSE(store.has(7));
  store.insert(7);
  EXPECT_TRUE(store.has(7));
  store.insert(7);
  EXPECT_EQ(store.size(), 1u);
}

// --- Churn models ------------------------------------------------------------

class ChurnMeanSweep
    : public ::testing::TestWithParam<std::shared_ptr<ChurnModel>> {};

TEST_P(ChurnMeanSweep, EmpiricalMeanMatchesDeclared) {
  const auto& model = *GetParam();
  util::Rng rng(14);
  double sum = 0.0;
  constexpr int kSamples = 300'000;
  for (int i = 0; i < kSamples; ++i) {
    const double lifetime = model.sample_lifetime(rng);
    EXPECT_GT(lifetime, 0.0);
    sum += lifetime;
  }
  EXPECT_NEAR(sum / kSamples, model.mean_lifetime(),
              0.05 * model.mean_lifetime());
}

INSTANTIATE_TEST_SUITE_P(
    Models, ChurnMeanSweep,
    ::testing::Values(std::make_shared<ExponentialChurn>(5.0),
                      std::make_shared<ExponentialChurn>(100.0),
                      std::make_shared<ParetoChurn>(1.0, 3.0),
                      std::make_shared<TwoClassChurn>(0.2, 100.0, 5.0)));

TEST(TwoClassChurn, MeanIsMixture) {
  TwoClassChurn churn(0.25, 100.0, 4.0);
  EXPECT_DOUBLE_EQ(churn.mean_lifetime(), 0.25 * 100.0 + 0.75 * 4.0);
  EXPECT_DOUBLE_EQ(churn.core_fraction(), 0.25);
}

TEST(ParetoChurn, HeavyTailExceedsScale) {
  ParetoChurn churn(2.0, 2.0);
  util::Rng rng(15);
  for (int i = 0; i < 1'000; ++i) EXPECT_GE(churn.sample_lifetime(rng), 2.0);
  EXPECT_DOUBLE_EQ(churn.mean_lifetime(), 4.0);
}

}  // namespace
}  // namespace aar::workload
