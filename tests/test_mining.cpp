#include "mining/incremental_miner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <sstream>
#include <vector>

#include "mining/window_merge.hpp"

#include "core/strategy.hpp"
#include "overlay/assoc_policy.hpp"
#include "util/rng.hpp"

namespace aar::mining {
namespace {

using trace::QueryReplyPair;

QueryReplyPair pair_of(HostId source, HostId replier, trace::Guid guid = 0) {
  return QueryReplyPair{.time = 0.0,
                        .guid = guid,
                        .source_host = source,
                        .replying_neighbor = replier};
}

std::string saved(const core::RuleSet& rules) {
  std::ostringstream os;
  rules.save(os);
  return os.str();
}

/// The batch reference: RuleSet::build over the miner's live window, which a
/// snapshot must reproduce byte-for-byte.
core::RuleSet batch_of(const std::deque<QueryReplyPair>& window,
                       const MinerConfig& config) {
  const std::vector<QueryReplyPair> pairs(window.begin(), window.end());
  return core::RuleSet::build(pairs, config.min_support, config.min_confidence);
}

/// Snapshot the miner and assert byte-identical agreement with batch mining
/// over the reference window.
void expect_snapshot_matches(IncrementalRuleMiner& miner,
                             const std::deque<QueryReplyPair>& window,
                             const std::string& context) {
  ASSERT_EQ(miner.window_size(), window.size()) << context;
  const core::RuleSet& snapshot = miner.snapshot();
  const core::RuleSet batch = batch_of(window, miner.config());
  EXPECT_EQ(snapshot, batch) << context;
  EXPECT_EQ(snapshot.num_rules(), batch.num_rules()) << context;
  EXPECT_EQ(snapshot.num_antecedents(), batch.num_antecedents()) << context;
  EXPECT_EQ(saved(snapshot), saved(batch)) << context;
}

TEST(IncrementalRuleMiner, EmptyMinerSnapshotsEmptyRuleSet) {
  IncrementalRuleMiner miner({.window = 8, .min_support = 1});
  EXPECT_TRUE(miner.snapshot().empty());
  EXPECT_EQ(miner.window_size(), 0u);
  EXPECT_EQ(miner.distinct_antecedents(), 0u);
}

TEST(IncrementalRuleMiner, CountsAndSortsLikeBatchBuild) {
  IncrementalRuleMiner miner({.window = 0, .min_support = 2});
  std::deque<QueryReplyPair> window;
  // 7->3 five times, 7->4 twice, 7->5 twice (tie broken by neighbor id),
  // 8->1 once (pruned).
  const std::vector<QueryReplyPair> pairs{
      pair_of(7, 3), pair_of(7, 4), pair_of(7, 3), pair_of(7, 5),
      pair_of(7, 3), pair_of(8, 1), pair_of(7, 5), pair_of(7, 4),
      pair_of(7, 3), pair_of(7, 3)};
  for (const auto& pair : pairs) {
    miner.add(pair);
    window.push_back(pair);
  }
  expect_snapshot_matches(miner, window, "fixed example");
  const auto consequents = miner.ruleset().consequents(7);
  ASSERT_EQ(consequents.size(), 3u);
  EXPECT_EQ(consequents[0], (core::Consequent{3, 5}));
  EXPECT_EQ(consequents[1], (core::Consequent{4, 2}));  // tie: lower id first
  EXPECT_EQ(consequents[2], (core::Consequent{5, 2}));
  EXPECT_FALSE(miner.ruleset().covers(8));  // below min_support
}

TEST(IncrementalRuleMiner, MinSupportBoundaryCrossedByEviction) {
  // Window 4, min_support 2: the rule lives exactly while two copies of
  // (7,3) are inside the window.
  IncrementalRuleMiner miner({.window = 4, .min_support = 2});
  std::deque<QueryReplyPair> window;
  auto slide = [&](HostId s, HostId r) {
    miner.add(pair_of(s, r));
    window.push_back(pair_of(s, r));
    while (window.size() > 4) window.pop_front();
  };
  slide(7, 3);
  expect_snapshot_matches(miner, window, "support 1 of 2");
  EXPECT_FALSE(miner.ruleset().matches(7, 3));
  slide(7, 3);
  expect_snapshot_matches(miner, window, "support exactly at threshold");
  EXPECT_TRUE(miner.ruleset().matches(7, 3));
  slide(9, 1);
  slide(9, 1);
  slide(9, 1);  // evicts the first (7,3): support drops back below threshold
  expect_snapshot_matches(miner, window, "support evicted below threshold");
  EXPECT_FALSE(miner.ruleset().matches(7, 3));
}

TEST(IncrementalRuleMiner, TotalEvictionRemovesAntecedent) {
  IncrementalRuleMiner miner({.window = 0, .min_support = 1});
  for (int i = 0; i < 3; ++i) miner.add(pair_of(7, 3));
  for (int i = 0; i < 2; ++i) miner.add(pair_of(8, 4));
  EXPECT_TRUE(miner.snapshot().covers(7));
  // Evict all of antecedent 7's pairs (they are oldest).
  miner.evict_to(2);
  EXPECT_EQ(miner.evictions(), 3u);
  const core::RuleSet& rules = miner.snapshot();
  EXPECT_FALSE(rules.covers(7));
  EXPECT_TRUE(rules.matches(8, 4));
  EXPECT_EQ(rules.num_antecedents(), 1u);
  EXPECT_EQ(miner.distinct_antecedents(), 1u);
}

TEST(IncrementalRuleMiner, RingWrapAroundKeepsWindowExact) {
  // Capacity 7 (not a power of two) forces head wrap-around many times over.
  IncrementalRuleMiner miner({.window = 7, .min_support = 1});
  std::deque<QueryReplyPair> window;
  util::Rng rng(11);
  for (int i = 0; i < 500; ++i) {
    const auto pair = pair_of(static_cast<HostId>(rng.below(4)),
                              static_cast<HostId>(10 + rng.below(4)));
    miner.add(pair);
    window.push_back(pair);
    while (window.size() > 7) window.pop_front();
    ASSERT_EQ(miner.window_size(), window.size());
    for (std::size_t j = 0; j < window.size(); ++j) {
      ASSERT_EQ(miner.window_pair(j), window[j]) << "i=" << i << " j=" << j;
    }
  }
  expect_snapshot_matches(miner, window, "after 500 wrap-around adds");
}

TEST(IncrementalRuleMiner, DifferentialRandomizedAgainstBatch) {
  // Randomized windows over small host spaces (to force collisions),
  // snapshotting at random points; every snapshot must equal batch mining
  // over the live window, byte for byte.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    util::Rng rng(seed);
    const std::size_t window_cap = 1 + rng.below(40);      // 1 .. 40
    const auto min_support = static_cast<std::uint32_t>(1 + rng.below(4));
    MinerConfig config{.window = window_cap, .min_support = min_support};
    IncrementalRuleMiner miner(config);
    std::deque<QueryReplyPair> window;
    const HostId sources = static_cast<HostId>(2 + rng.below(5));
    const HostId repliers = static_cast<HostId>(2 + rng.below(5));
    for (int i = 0; i < 600; ++i) {
      const auto pair = pair_of(static_cast<HostId>(rng.below(sources)),
                                static_cast<HostId>(100 + rng.below(repliers)));
      miner.add(pair);
      window.push_back(pair);
      while (window.size() > window_cap) window.pop_front();
      if (rng.chance(0.1)) {
        expect_snapshot_matches(miner, window,
                                "seed=" + std::to_string(seed) +
                                    " i=" + std::to_string(i));
      }
    }
    expect_snapshot_matches(miner, window,
                            "seed=" + std::to_string(seed) + " final");
  }
}

TEST(IncrementalRuleMiner, DifferentialWithConfidencePruning) {
  for (std::uint64_t seed = 100; seed < 106; ++seed) {
    util::Rng rng(seed);
    MinerConfig config{
        .window = 24, .min_support = 2, .min_confidence = 0.25};
    IncrementalRuleMiner miner(config);
    std::deque<QueryReplyPair> window;
    for (int i = 0; i < 400; ++i) {
      // Two sources, replier skew so confidences straddle the 0.25 cut.
      const auto pair = pair_of(static_cast<HostId>(rng.below(2)),
                                static_cast<HostId>(10 + rng.below(5)));
      miner.add(pair);
      window.push_back(pair);
      while (window.size() > 24) window.pop_front();
      if (i % 37 == 0) {
        expect_snapshot_matches(miner, window,
                                "confidence seed=" + std::to_string(seed) +
                                    " i=" + std::to_string(i));
      }
    }
    expect_snapshot_matches(miner, window, "confidence final");
  }
}

TEST(IncrementalRuleMiner, ManualEvictionMatchesBatch) {
  // Unbounded window driven with evict_to(), the core::Strategy pattern.
  IncrementalRuleMiner miner({.window = 0, .min_support = 2});
  std::deque<QueryReplyPair> window;
  util::Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    const std::size_t adds = 5 + rng.below(30);
    for (std::size_t i = 0; i < adds; ++i) {
      const auto pair = pair_of(static_cast<HostId>(rng.below(4)),
                                static_cast<HostId>(50 + rng.below(3)));
      miner.add(pair);
      window.push_back(pair);
    }
    const std::size_t keep = rng.below(window.size() + 1);
    miner.evict_to(keep);
    while (window.size() > keep) window.pop_front();
    expect_snapshot_matches(miner, window, "round " + std::to_string(round));
  }
}

TEST(IncrementalRuleMiner, SnapshotIsStableBetweenChanges) {
  IncrementalRuleMiner miner({.window = 0, .min_support = 1});
  miner.add(pair_of(1, 2));
  const core::RuleSet& first = miner.snapshot();
  const std::string bytes = saved(first);
  EXPECT_EQ(miner.dirty_antecedents(), 0u);
  // A second snapshot with no window churn re-materializes nothing.
  const core::RuleSet& second = miner.snapshot();
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(saved(second), bytes);
  EXPECT_EQ(miner.snapshots_taken(), 2u);
}

TEST(IncrementalRuleMiner, RulesetLagsUntilSnapshot) {
  IncrementalRuleMiner miner({.window = 0, .min_support = 1});
  miner.add(pair_of(1, 2));
  EXPECT_TRUE(miner.ruleset().empty());  // counts moved, view did not
  EXPECT_EQ(miner.dirty_antecedents(), 1u);
  miner.snapshot();
  EXPECT_TRUE(miner.ruleset().matches(1, 2));
}

TEST(IncrementalRuleMiner, ClearEmptiesEverything) {
  IncrementalRuleMiner miner({.window = 8, .min_support = 1});
  for (int i = 0; i < 6; ++i) miner.add(pair_of(1, 2));
  EXPECT_FALSE(miner.snapshot().empty());
  miner.clear();
  EXPECT_EQ(miner.window_size(), 0u);
  EXPECT_TRUE(miner.snapshot().empty());
  EXPECT_EQ(miner.distinct_antecedents(), 0u);
}

// --- the refactored consumers stay equivalent to batch mining ---------------

TEST(MinerBackedStrategy, SlidingRegenerateEqualsBatchBuild) {
  core::SlidingWindow strategy(2);
  util::Rng rng(5);
  std::vector<QueryReplyPair> previous;
  for (int block = 0; block < 6; ++block) {
    std::vector<QueryReplyPair> pairs;
    for (int i = 0; i < 64; ++i) {
      pairs.push_back(pair_of(static_cast<HostId>(rng.below(5)),
                              static_cast<HostId>(20 + rng.below(4)),
                              static_cast<trace::Guid>(block * 1000 + i)));
    }
    if (block == 0) {
      strategy.bootstrap(pairs);
    } else {
      strategy.test_block(pairs);
    }
    const core::RuleSet batch = core::RuleSet::build(pairs, 2);
    EXPECT_EQ(strategy.current_ruleset(), batch) << "block " << block;
    EXPECT_EQ(saved(strategy.current_ruleset()), saved(batch));
    previous = std::move(pairs);
  }
}

TEST(MinerBackedPolicy, RulesEqualBatchOverObservationWindow) {
  overlay::AssociationPolicyConfig config;
  config.window = 48;
  config.rebuild_every = 16;
  config.min_support = 2;
  overlay::AssociationRoutingPolicy policy(config);
  util::Rng rng(9);
  std::deque<QueryReplyPair> window;
  std::size_t since_rebuild = 0;
  core::RuleSet expected;
  for (trace::Guid g = 0; g < 300; ++g) {
    const auto upstream = static_cast<overlay::NodeId>(rng.below(6));
    const auto downstream = static_cast<overlay::NodeId>(rng.below(6));
    policy.on_reply_path(overlay::Query{.guid = g, .target = 0, .category = 0,
                                        .origin = 0},
                         /*self=*/0, upstream, downstream);
    window.push_back(pair_of(upstream, downstream, g));
    while (window.size() > config.window) window.pop_front();
    if (++since_rebuild >= config.rebuild_every) {
      since_rebuild = 0;
      const std::vector<QueryReplyPair> pairs(window.begin(), window.end());
      expected = core::RuleSet::build(pairs, config.min_support);
    }
    ASSERT_EQ(policy.rules(), expected) << "observation " << g;
  }
  EXPECT_EQ(policy.miner().window_size(), window.size());
}

// --- WindowMerger: canonical shard-window merge (node daemon) ------------

/// A deterministic pair stream with globally unique times, the shape the
/// sharded daemon feeds the merger (time = global message counter).
std::vector<QueryReplyPair> timed_pairs(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<QueryReplyPair> pairs;
  pairs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    pairs.push_back(QueryReplyPair{
        .time = static_cast<double>(i + 1),
        .guid = seed * 1'000'003 + i,
        .source_host = static_cast<HostId>(rng.below(12)),
        .replying_neighbor = static_cast<HostId>(rng.below(6)),
    });
  }
  return pairs;
}

TEST(WindowMerger, MergeEqualsSerialAddForAnyShardCount) {
  const std::vector<QueryReplyPair> pairs = timed_pairs(300, 11);
  const MinerConfig config{.window = 1024, .min_support = 2};

  IncrementalRuleMiner serial(config);
  for (const QueryReplyPair& pair : pairs) serial.add(pair);
  const std::string expected = saved(serial.snapshot());

  for (const std::size_t shards : {1u, 2u, 5u}) {
    WindowMerger merger(shards);
    // Scatter round-robin: each shard holds its pairs in time order, like a
    // daemon shard's private window.
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      merger.input(i % shards).push_back(pairs[i]);
    }
    IncrementalRuleMiner merged(config);
    const auto block = merger.merge_into(merged);
    ASSERT_EQ(block.size(), pairs.size());
    EXPECT_TRUE(std::is_sorted(
        block.begin(), block.end(),
        [](const auto& a, const auto& b) { return a.time < b.time; }));
    EXPECT_EQ(saved(merged.snapshot()), expected) << "shards=" << shards;
    EXPECT_EQ(merged.window_size(), serial.window_size());
  }
}

TEST(WindowMerger, MergedRulesAreInvariantUnderThePartition) {
  const std::vector<QueryReplyPair> pairs = timed_pairs(240, 23);
  const MinerConfig config{.window = 1024, .min_support = 2};

  std::string reference;
  // Three partitions of the same multiset: round-robin, contiguous chunks,
  // and everything-on-one-shard.
  for (int mode = 0; mode < 3; ++mode) {
    WindowMerger merger(3);
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      const std::size_t shard = mode == 0   ? i % 3
                                : mode == 1 ? i / ((pairs.size() / 3) + 1)
                                            : 0;
      merger.input(shard).push_back(pairs[i]);
    }
    IncrementalRuleMiner miner(config);
    (void)merger.merge_into(miner);
    const std::string bytes = saved(miner.snapshot());
    if (mode == 0) {
      reference = bytes;
      EXPECT_FALSE(reference.empty());
    } else {
      EXPECT_EQ(bytes, reference) << "partition mode " << mode;
    }
  }
}

TEST(WindowMerger, TruncationKeepsTheNewestPairsLikeASlidingWindow) {
  const std::vector<QueryReplyPair> pairs = timed_pairs(300, 31);
  const MinerConfig config{.window = 100, .min_support = 2};

  // Serial reference: a bounded miner that saw every pair in time order and
  // slid its window as it went.
  IncrementalRuleMiner serial(config);
  for (const QueryReplyPair& pair : pairs) serial.add(pair);
  ASSERT_EQ(serial.window_size(), config.window);

  WindowMerger merger(2);
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    merger.input(i % 2).push_back(pairs[i]);
  }
  IncrementalRuleMiner merged(config);
  const auto block = merger.merge_into(merged);
  ASSERT_EQ(block.size(), config.window);
  // The truncated block is exactly the newest `window` pairs.
  EXPECT_EQ(block.front().time, pairs[pairs.size() - config.window].time);
  EXPECT_EQ(block.back().time, pairs.back().time);
  EXPECT_EQ(saved(merged.snapshot()), saved(serial.snapshot()));
}

TEST(WindowMerger, InputsSurviveTheMergeAndEmptyMergeClears) {
  WindowMerger merger(2);
  merger.input(0).push_back(pair_of(1, 2, 5));
  merger.input(0).back().time = 1.0;
  IncrementalRuleMiner miner({.window = 8, .min_support = 1});
  (void)merger.merge_into(miner);
  EXPECT_EQ(miner.window_size(), 1u);
  // Inputs are the shards' windows — the merger must not consume them.
  EXPECT_EQ(merger.input(0).size(), 1u);

  merger.input(0).clear();
  (void)merger.merge_into(miner);
  EXPECT_EQ(miner.window_size(), 0u);
  EXPECT_TRUE(miner.snapshot().empty());
}

}  // namespace
}  // namespace aar::mining
