#include "overlay/assoc_policy.hpp"
#include "overlay/network.hpp"
#include "overlay/routing_indices.hpp"
#include "overlay/shortcuts.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace aar::overlay {
namespace {

Query make_query(workload::Category category = 0) {
  return Query{.guid = 1, .target = 0, .category = category, .origin = 0};
}

// --- AssociationRoutingPolicy ------------------------------------------------

TEST(AssociationPolicy, FloodsBeforeAnyRulesExist) {
  AssociationRoutingPolicy policy;
  util::Rng rng(1);
  std::vector<NodeId> out;
  const std::vector<NodeId> neighbors{1, 2, 3};
  const bool directed = policy.route(make_query(), 0, 2, neighbors, rng, out);
  EXPECT_FALSE(directed);
  EXPECT_EQ(out, (std::vector<NodeId>{1, 3}));  // all except `from`
  EXPECT_EQ(policy.floods(), 1u);
}

TEST(AssociationPolicy, LearnsRuleAndRoutesToIt) {
  AssociationPolicyConfig config;
  config.min_support = 2;
  config.rebuild_every = 4;
  AssociationRoutingPolicy policy(config);
  util::Rng rng(2);
  // Teach: queries from neighbor 7 are answered through neighbor 3.
  for (trace::Guid g = 0; g < 8; ++g) {
    Query q = make_query();
    q.guid = 100 + g;
    policy.on_reply_path(q, /*self=*/0, /*upstream=*/7, /*downstream=*/3);
  }
  EXPECT_TRUE(policy.rules().covers(7));
  std::vector<NodeId> out;
  const std::vector<NodeId> neighbors{1, 3, 7, 9};
  const bool directed = policy.route(make_query(), 0, 7, neighbors, rng, out);
  EXPECT_TRUE(directed);
  EXPECT_EQ(out, (std::vector<NodeId>{3}));
  EXPECT_EQ(policy.rule_hits(), 1u);
}

TEST(AssociationPolicy, ConsequentNoLongerNeighborFallsBackToFlood) {
  AssociationPolicyConfig config;
  config.min_support = 2;
  config.rebuild_every = 4;
  AssociationRoutingPolicy policy(config);
  util::Rng rng(3);
  for (trace::Guid g = 0; g < 8; ++g) {
    Query q = make_query();
    q.guid = g;
    policy.on_reply_path(q, 0, 7, 3);
  }
  std::vector<NodeId> out;
  const std::vector<NodeId> neighbors{1, 9};  // 3 has churned away
  const bool directed = policy.route(make_query(), 0, 7, neighbors, rng, out);
  EXPECT_FALSE(directed);
  EXPECT_EQ(out, (std::vector<NodeId>{1, 9}));
}

TEST(AssociationPolicy, NeverForwardsBackToSender) {
  AssociationPolicyConfig config;
  config.min_support = 2;
  config.rebuild_every = 4;
  AssociationRoutingPolicy policy(config);
  util::Rng rng(4);
  // Degenerate learned rule: {7} -> {7}.
  for (trace::Guid g = 0; g < 8; ++g) {
    Query q = make_query();
    q.guid = g;
    policy.on_reply_path(q, 0, 7, 7);
  }
  std::vector<NodeId> out;
  const std::vector<NodeId> neighbors{7, 9};
  policy.route(make_query(), 0, 7, neighbors, rng, out);
  EXPECT_EQ(out, (std::vector<NodeId>{9}));  // flooded, sender excluded
}

TEST(AssociationPolicy, SlidingWindowForgetsOldPairs) {
  AssociationPolicyConfig config;
  config.window = 16;
  config.rebuild_every = 16;
  config.min_support = 3;
  AssociationRoutingPolicy policy(config);
  // 16 observations of (7 -> 3) ...
  for (trace::Guid g = 0; g < 16; ++g) {
    Query q = make_query();
    q.guid = g;
    policy.on_reply_path(q, 0, 7, 3);
  }
  EXPECT_TRUE(policy.rules().matches(7, 3));
  // ... displaced by 16 observations of (8 -> 4).
  for (trace::Guid g = 16; g < 32; ++g) {
    Query q = make_query();
    q.guid = g;
    policy.on_reply_path(q, 0, 8, 4);
  }
  EXPECT_FALSE(policy.rules().covers(7));
  EXPECT_TRUE(policy.rules().matches(8, 4));
}

TEST(AssociationPolicy, WantsFloodFallback) {
  AssociationRoutingPolicy policy;
  EXPECT_TRUE(policy.wants_flood_fallback());
  EXPECT_FALSE(policy.allows_revisit());
}

// --- InterestShortcutsPolicy -------------------------------------------------

TEST(ShortcutsPolicy, StartsEmptyAndLearnsProviders) {
  InterestShortcutsPolicy policy;
  std::vector<NodeId> probes;
  policy.probe_candidates(make_query(), 0, probes);
  EXPECT_TRUE(probes.empty());
  policy.on_search_result(make_query(), 0, true, 42);
  probes.clear();
  policy.probe_candidates(make_query(), 0, probes);
  EXPECT_EQ(probes, (std::vector<NodeId>{42}));
}

TEST(ShortcutsPolicy, MoveToFrontOnRepeatSuccess) {
  InterestShortcutsPolicy policy;
  policy.on_search_result(make_query(), 0, true, 1);
  policy.on_search_result(make_query(), 0, true, 2);
  policy.on_search_result(make_query(), 0, true, 3);
  EXPECT_EQ(policy.shortcuts(), (std::vector<NodeId>{3, 2, 1}));
  policy.on_search_result(make_query(), 0, true, 1);
  EXPECT_EQ(policy.shortcuts(), (std::vector<NodeId>{1, 3, 2}));
}

TEST(ShortcutsPolicy, ListIsBounded) {
  InterestShortcutsPolicy policy({.list_size = 3, .probes = 3});
  for (NodeId n = 1; n <= 10; ++n) {
    policy.on_search_result(make_query(), 0, true, n);
  }
  EXPECT_EQ(policy.shortcuts(), (std::vector<NodeId>{10, 9, 8}));
}

TEST(ShortcutsPolicy, MissesAndSelfAreIgnored) {
  InterestShortcutsPolicy policy;
  policy.on_search_result(make_query(), 5, false, 9);
  policy.on_search_result(make_query(), 5, true, kNoNode);
  policy.on_search_result(make_query(), 5, true, 5);  // self
  EXPECT_TRUE(policy.shortcuts().empty());
}

TEST(ShortcutsPolicy, ProbesRespectLimit) {
  InterestShortcutsPolicy policy({.list_size = 10, .probes = 2});
  for (NodeId n = 1; n <= 5; ++n) {
    policy.on_search_result(make_query(), 0, true, n);
  }
  std::vector<NodeId> probes;
  policy.probe_candidates(make_query(), 0, probes);
  EXPECT_EQ(probes, (std::vector<NodeId>{5, 4}));
}

// --- RoutingIndexTable / policy ----------------------------------------------

TEST(RoutingIndexTable, LineGraphPointsTowardContent) {
  // 0 - 1 - 2; all documents of category 0 live at node 2.
  Graph line(3);
  line.add_edge(0, 1);
  line.add_edge(1, 2);
  std::vector<std::vector<double>> docs{{0.0}, {0.0}, {10.0}};
  RoutingIndexTable table(line, docs, /*horizon=*/3, /*decay=*/0.5);
  // From node 0, the only neighbor (slot 0 = node 1) must show discounted
  // mass (10 * 0.5 through node 1's view discounted once more = 2.5 .. 5).
  EXPECT_GT(table.goodness(0, 0, 0), 0.0);
  // From node 1, neighbor node 2 (whichever slot) beats neighbor node 0.
  const auto n1 = line.neighbors(1);
  double toward2 = 0.0, toward0 = 0.0;
  for (std::size_t slot = 0; slot < n1.size(); ++slot) {
    (n1[slot] == 2 ? toward2 : toward0) = table.goodness(1, slot, 0);
  }
  EXPECT_GT(toward2, toward0);
}

TEST(RoutingIndicesPolicy, ForwardsToBestNeighborOnly) {
  Graph line(3);
  line.add_edge(0, 1);
  line.add_edge(1, 2);
  std::vector<std::vector<double>> docs{{0.0}, {0.0}, {10.0}};
  auto table = std::make_shared<RoutingIndexTable>(line, docs, 3, 0.5);
  RoutingIndicesPolicy policy(table, {.fan_out = 1});
  util::Rng rng(5);
  std::vector<NodeId> out;
  const auto neighbors = line.neighbors(1);
  const bool directed =
      policy.route(make_query(0), 1, 0, neighbors, rng, out);
  EXPECT_TRUE(directed);
  EXPECT_EQ(out, (std::vector<NodeId>{2}));
}

TEST(RoutingIndicesPolicy, ExcludesSender) {
  Graph star(3);
  star.add_edge(0, 1);
  star.add_edge(0, 2);
  std::vector<std::vector<double>> docs{{0.0}, {5.0}, {5.0}};
  auto table = std::make_shared<RoutingIndexTable>(star, docs, 2, 0.5);
  RoutingIndicesPolicy policy(table, {.fan_out = 2});
  util::Rng rng(6);
  std::vector<NodeId> out;
  policy.route(make_query(0), 0, 1, star.neighbors(0), rng, out);
  EXPECT_EQ(out, (std::vector<NodeId>{2}));  // 1 is the sender
}

// --- KRandomWalkPolicy -------------------------------------------------------

TEST(KRandomWalkPolicy, OriginLaunchesKWalkers) {
  KRandomWalkPolicy policy(8);
  util::Rng rng(7);
  std::vector<NodeId> out;
  const std::vector<NodeId> neighbors{1, 2, 3};
  policy.route(make_query(), /*self=*/0, /*from=*/0, neighbors, rng, out);
  EXPECT_EQ(out.size(), 8u);
  for (NodeId n : out) EXPECT_NE(std::find(neighbors.begin(), neighbors.end(), n),
                                 neighbors.end());
}

TEST(KRandomWalkPolicy, IntermediateForwardsOneWalker) {
  KRandomWalkPolicy policy(8);
  util::Rng rng(8);
  std::vector<NodeId> out;
  const std::vector<NodeId> neighbors{1, 2, 3};
  policy.route(make_query(), /*self=*/5, /*from=*/2, neighbors, rng, out);
  EXPECT_EQ(out.size(), 1u);
}

}  // namespace
}  // namespace aar::overlay
