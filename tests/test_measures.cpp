#include "core/measures.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace aar::core {
namespace {

using trace::QueryReplyPair;

QueryReplyPair pair(trace::Guid guid, HostId source, HostId replier) {
  return {.time = 0.0, .guid = guid, .source_host = source,
          .replying_neighbor = replier};
}

RuleSet rules_from(const std::vector<QueryReplyPair>& pairs,
                   std::uint32_t min_support = 1) {
  return RuleSet::build(pairs, min_support);
}

TEST(Measures, EmptyBlock) {
  const RuleSet rules;
  const BlockMeasures m = evaluate(rules, {});
  EXPECT_EQ(m.total_queries, 0u);
  EXPECT_EQ(m.coverage(), 0.0);
  EXPECT_EQ(m.success(), 0.0);
}

TEST(Measures, PerfectRuleSet) {
  const std::vector<QueryReplyPair> train{pair(1, 10, 100), pair(2, 20, 200)};
  const RuleSet rules = rules_from(train);
  const std::vector<QueryReplyPair> test{pair(3, 10, 100), pair(4, 20, 200)};
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_EQ(m.total_queries, 2u);
  EXPECT_EQ(m.covered, 2u);
  EXPECT_EQ(m.successful, 2u);
  EXPECT_DOUBLE_EQ(m.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(m.success(), 1.0);
}

TEST(Measures, CoverageWithoutSuccess) {
  // Antecedent known, but replies come through a different neighbor.
  const RuleSet rules = rules_from({pair(1, 10, 100)});
  const std::vector<QueryReplyPair> test{pair(2, 10, 999)};
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_EQ(m.total_queries, 1u);
  EXPECT_EQ(m.covered, 1u);
  EXPECT_EQ(m.successful, 0u);
  EXPECT_DOUBLE_EQ(m.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(m.success(), 0.0);
}

TEST(Measures, UncoveredQueriesLowerAlphaOnly) {
  const RuleSet rules = rules_from({pair(1, 10, 100)});
  const std::vector<QueryReplyPair> test{
      pair(2, 10, 100),  // covered + successful
      pair(3, 55, 100),  // unknown source -> uncovered
  };
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_DOUBLE_EQ(m.coverage(), 0.5);
  EXPECT_DOUBLE_EQ(m.success(), 1.0);  // of the covered one
}

TEST(Measures, QueriesAreUniqueByGuid) {
  const RuleSet rules = rules_from({pair(1, 10, 100)});
  // One query answered through three neighbors: counts once for N and n.
  const std::vector<QueryReplyPair> test{
      pair(7, 10, 500), pair(7, 10, 501), pair(7, 10, 100)};
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_EQ(m.total_queries, 1u);
  EXPECT_EQ(m.covered, 1u);
  EXPECT_EQ(m.successful, 1u);  // any matching reply counts, once
}

TEST(Measures, MultiReplySuccessCountsOnce) {
  const RuleSet rules = rules_from({pair(1, 10, 100), pair(2, 10, 101)});
  const std::vector<QueryReplyPair> test{pair(9, 10, 100), pair(9, 10, 101)};
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_EQ(m.successful, 1u);
}

TEST(Measures, SuccessIsConditionalOnCoverage) {
  // An uncovered query whose pair happens to exist in no rule: success
  // denominator only counts covered queries.
  const RuleSet rules = rules_from({pair(1, 10, 100)});
  const std::vector<QueryReplyPair> test{
      pair(2, 10, 100), pair(3, 20, 100), pair(4, 30, 100), pair(5, 40, 100)};
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_EQ(m.total_queries, 4u);
  EXPECT_EQ(m.covered, 1u);
  EXPECT_EQ(m.successful, 1u);
  EXPECT_DOUBLE_EQ(m.coverage(), 0.25);
  EXPECT_DOUBLE_EQ(m.success(), 1.0);
}

TEST(Measures, ValuesAlwaysInUnitInterval) {
  util::Rng rng(11);
  std::vector<QueryReplyPair> train;
  std::vector<QueryReplyPair> test;
  for (int i = 0; i < 500; ++i) {
    train.push_back(pair(static_cast<trace::Guid>(i),
                         static_cast<HostId>(rng.below(30)),
                         static_cast<HostId>(100 + rng.below(8))));
    test.push_back(pair(static_cast<trace::Guid>(1000 + i),
                        static_cast<HostId>(rng.below(40)),
                        static_cast<HostId>(100 + rng.below(8))));
  }
  for (std::uint32_t threshold : {1u, 3u, 10u, 100u}) {
    const BlockMeasures m = evaluate(RuleSet::build(train, threshold), test);
    EXPECT_GE(m.coverage(), 0.0);
    EXPECT_LE(m.coverage(), 1.0);
    EXPECT_GE(m.success(), 0.0);
    EXPECT_LE(m.success(), 1.0);
    EXPECT_LE(m.successful, m.covered);
    EXPECT_LE(m.covered, m.total_queries);
  }
}

// The edge-case convention documented in core/measures.hpp: both ratios are
// total functions and never NaN, even where the mathematical definition hits
// 0/0.  These pins are what per-block series, the adaptive thresholds, and
// the metrics exporter rely on.

TEST(Measures, EdgeCaseAlphaIsZeroNotNaNWhenNoQueries) {
  // N = 0: α's denominator vanishes.  Convention: α ≡ 0, never NaN.
  const BlockMeasures m = evaluate(RuleSet(), {});
  EXPECT_EQ(m.total_queries, 0u);
  EXPECT_FALSE(std::isnan(m.coverage()));
  EXPECT_FALSE(std::isnan(m.success()));
  EXPECT_DOUBLE_EQ(m.coverage(), 0.0);
  EXPECT_DOUBLE_EQ(m.success(), 0.0);
}

TEST(Measures, EdgeCaseRhoIsZeroNotNaNWhenNothingCovered) {
  // N > 0 but n = 0: ρ = s/n hits 0/0.  Convention: resolve pessimistically
  // to 0 rather than propagating NaN into series and thresholds.
  const RuleSet rules = rules_from({pair(1, 10, 100)});
  const std::vector<QueryReplyPair> test{pair(2, 77, 100), pair(3, 88, 100)};
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_EQ(m.total_queries, 2u);
  EXPECT_EQ(m.covered, 0u);
  EXPECT_FALSE(std::isnan(m.success()));
  EXPECT_DOUBLE_EQ(m.success(), 0.0);
}

TEST(Measures, EdgeCaseCoveredButUnsuccessfulBlock) {
  // Every query covered, none successful: α = 1, ρ = 0 — the measures are
  // independent by construction, and neither degenerates.
  const RuleSet rules = rules_from({pair(1, 10, 100), pair(2, 20, 200)});
  const std::vector<QueryReplyPair> test{pair(3, 10, 999), pair(4, 20, 999)};
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_EQ(m.total_queries, 2u);
  EXPECT_EQ(m.covered, 2u);
  EXPECT_EQ(m.successful, 0u);
  EXPECT_DOUBLE_EQ(m.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(m.success(), 0.0);
}

TEST(Measures, EdgeCaseDefaultConstructedMeasuresAreFinite) {
  // A BlockMeasures that never saw a block (e.g. an untested slot in a
  // pre-sized result array) still reports finite ratios.
  const BlockMeasures m;
  EXPECT_TRUE(std::isfinite(m.coverage()));
  EXPECT_TRUE(std::isfinite(m.success()));
}

TEST(Measures, EmptyRuleSetCoversNothing) {
  const RuleSet rules;
  const std::vector<QueryReplyPair> test{pair(1, 10, 100), pair(2, 11, 100)};
  const BlockMeasures m = evaluate(rules, test);
  EXPECT_EQ(m.total_queries, 2u);
  EXPECT_EQ(m.covered, 0u);
  EXPECT_EQ(m.success(), 0.0);
}

}  // namespace
}  // namespace aar::core
