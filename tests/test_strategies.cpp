#include "core/strategy.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace aar::core {
namespace {

using trace::QueryReplyPair;

std::vector<QueryReplyPair> block_of(HostId source, HostId replier,
                                     std::size_t n, trace::Guid guid_base) {
  std::vector<QueryReplyPair> pairs;
  for (std::size_t i = 0; i < n; ++i) {
    pairs.push_back({.time = 0.0,
                     .guid = guid_base + i,
                     .source_host = source,
                     .replying_neighbor = replier});
  }
  return pairs;
}

TEST(StaticRuleset, NeverRegenerates) {
  StaticRuleset strategy(1);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  EXPECT_EQ(strategy.rulesets_generated(), 1u);
  for (trace::Guid b = 0; b < 5; ++b) {
    strategy.test_block(block_of(1, 100, 10, 1'000 * (b + 1)));
  }
  EXPECT_EQ(strategy.rulesets_generated(), 1u);
}

TEST(StaticRuleset, DegradesWhenWorldChanges) {
  StaticRuleset strategy(1);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  const BlockMeasures same = strategy.test_block(block_of(1, 100, 10, 100));
  EXPECT_DOUBLE_EQ(same.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(same.success(), 1.0);
  // Replier changed: still covered, no success.
  const BlockMeasures drifted = strategy.test_block(block_of(1, 999, 10, 200));
  EXPECT_DOUBLE_EQ(drifted.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(drifted.success(), 0.0);
  // Host changed: nothing covered.
  const BlockMeasures churned = strategy.test_block(block_of(2, 100, 10, 300));
  EXPECT_DOUBLE_EQ(churned.coverage(), 0.0);
}

TEST(SlidingWindow, RegeneratesEveryBlock) {
  SlidingWindow strategy(1);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  for (trace::Guid b = 0; b < 4; ++b) {
    strategy.test_block(block_of(1, 100, 10, 1'000 * (b + 1)));
  }
  EXPECT_EQ(strategy.rulesets_generated(), 5u);  // bootstrap + 4
}

TEST(SlidingWindow, TestsAgainstPreviousBlock) {
  SlidingWindow strategy(1);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  // Block 1 changes the replier: tested against block 0's rules -> ρ = 0.
  const BlockMeasures b1 = strategy.test_block(block_of(1, 200, 10, 100));
  EXPECT_DOUBLE_EQ(b1.success(), 0.0);
  // Block 2 keeps the new replier: tested against block 1's rules -> ρ = 1.
  const BlockMeasures b2 = strategy.test_block(block_of(1, 200, 10, 200));
  EXPECT_DOUBLE_EQ(b2.success(), 1.0);
}

TEST(LazySlidingWindow, RegeneratesEveryPeriod) {
  LazySlidingWindow strategy(1, 3);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  for (trace::Guid b = 0; b < 9; ++b) {
    strategy.test_block(block_of(1, 100, 10, 1'000 * (b + 1)));
  }
  // 9 tested blocks / period 3 = 3 regenerations + bootstrap.
  EXPECT_EQ(strategy.rulesets_generated(), 4u);
  EXPECT_EQ(strategy.period(), 3u);
}

TEST(LazySlidingWindow, StaleBetweenRefreshes) {
  LazySlidingWindow strategy(1, 3);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  // World flips replier immediately; rules refresh only after 3 blocks.
  EXPECT_DOUBLE_EQ(strategy.test_block(block_of(1, 200, 10, 100)).success(), 0.0);
  EXPECT_DOUBLE_EQ(strategy.test_block(block_of(1, 200, 10, 200)).success(), 0.0);
  EXPECT_DOUBLE_EQ(strategy.test_block(block_of(1, 200, 10, 300)).success(), 0.0);
  // Refresh happened after the 3rd tested block.
  EXPECT_DOUBLE_EQ(strategy.test_block(block_of(1, 200, 10, 400)).success(), 1.0);
}

TEST(AdaptiveSlidingWindow, InitialThresholdApplies) {
  AdaptiveSlidingWindow strategy(1, 10, 0.7);
  EXPECT_NEAR(strategy.coverage_threshold(), 0.985 * 0.7, 1e-9);
  EXPECT_NEAR(strategy.success_threshold(), 0.985 * 0.7, 1e-9);
}

TEST(AdaptiveSlidingWindow, RegeneratesOnQualityDrop) {
  AdaptiveSlidingWindow strategy(1, 10, 0.7);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  EXPECT_EQ(strategy.rulesets_generated(), 1u);
  // Stable world: no regeneration.
  strategy.test_block(block_of(1, 100, 10, 100));
  EXPECT_EQ(strategy.rulesets_generated(), 1u);
  // Drift: success collapses below threshold -> regenerate from this block.
  strategy.test_block(block_of(1, 200, 10, 200));
  EXPECT_EQ(strategy.rulesets_generated(), 2u);
  // The regenerated set knows the new replier.
  const BlockMeasures next = strategy.test_block(block_of(1, 200, 10, 300));
  EXPECT_DOUBLE_EQ(next.success(), 1.0);
}

TEST(AdaptiveSlidingWindow, ThresholdTracksHistoryMean) {
  AdaptiveSlidingWindow strategy(1, 2, 0.7);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  strategy.test_block(block_of(1, 100, 10, 100));  // coverage 1.0
  strategy.test_block(block_of(1, 100, 10, 200));  // coverage 1.0
  // History = {1.0, 1.0}; threshold tracks 0.985 * mean.
  EXPECT_NEAR(strategy.coverage_threshold(), 0.985, 1e-9);
}

TEST(AdaptiveSlidingWindow, HistoryWindowIsBounded) {
  AdaptiveSlidingWindow strategy(1, 2, 0.7);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  // Two perfect blocks, then a total miss (different host).
  strategy.test_block(block_of(1, 100, 10, 100));
  strategy.test_block(block_of(1, 100, 10, 200));
  strategy.test_block(block_of(9, 900, 10, 300));  // coverage 0
  // Window of 2: mean of {1.0, 0.0} = 0.5.
  EXPECT_NEAR(strategy.coverage_threshold(), 0.985 * 0.5, 1e-9);
}

TEST(IncrementalRuleset, LearnsWithinABlock) {
  IncrementalRuleset strategy(1, /*half_life_pairs=*/1'000.0,
                              /*min_effective_support=*/2.0);
  strategy.bootstrap(block_of(1, 100, 50, 0));
  // Rules active immediately after bootstrap.
  const BlockMeasures m = strategy.test_block(block_of(1, 100, 50, 1'000));
  EXPECT_DOUBLE_EQ(m.coverage(), 1.0);
  EXPECT_DOUBLE_EQ(m.success(), 1.0);
}

TEST(IncrementalRuleset, AdaptsMidBlockAfterDrift) {
  IncrementalRuleset strategy(1, 1'000.0, 2.0);
  strategy.bootstrap(block_of(1, 100, 50, 0));
  // Replier flips; prequential evaluation pays only until the new pair
  // accumulates enough decayed support, then succeeds for the remainder.
  const BlockMeasures m = strategy.test_block(block_of(1, 200, 100, 1'000));
  EXPECT_GT(m.success(), 0.9);  // only the first few pairs miss
  EXPECT_LT(m.success(), 1.0);
}

TEST(IncrementalRuleset, DecayRetiresStaleRules) {
  IncrementalRuleset strategy(1, /*half_life_pairs=*/50.0, 2.0);
  strategy.bootstrap(block_of(1, 100, 20, 0));
  EXPECT_GT(strategy.active_rules(), 0u);
  // 10k pairs from a different host: host 1's counts decay to nothing.
  strategy.test_block(block_of(2, 200, 10'000, 1'000));
  // Prequential test with a 2-pair block: both arrive before host 1 can
  // re-accumulate min_effective support, so neither is covered.
  const BlockMeasures late = strategy.test_block(block_of(1, 100, 2, 100'000));
  EXPECT_DOUBLE_EQ(late.coverage(), 0.0);  // host 1's rules are gone
}

TEST(IncrementalRuleset, NoMinedRulesetsCounted) {
  IncrementalRuleset strategy(1);
  strategy.bootstrap(block_of(1, 100, 10, 0));
  strategy.test_block(block_of(1, 100, 10, 100));
  EXPECT_EQ(strategy.rulesets_generated(), 0u);
}

TEST(StrategyNames, AreDescriptive) {
  StaticRuleset s(1);
  SlidingWindow w(1);
  LazySlidingWindow l(1, 10);
  AdaptiveSlidingWindow a(1, 50);
  IncrementalRuleset i(1);
  EXPECT_EQ(s.name(), "static");
  EXPECT_EQ(w.name(), "sliding");
  EXPECT_EQ(l.name(), "lazy(10)");
  EXPECT_EQ(a.name(), "adaptive(N=50)");
  EXPECT_EQ(i.name(), "incremental");
}

}  // namespace
}  // namespace aar::core
