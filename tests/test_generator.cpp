#include "trace/generator.hpp"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>
#include <unordered_set>

namespace aar::trace {
namespace {

TraceConfig small_config(std::uint64_t seed = 1) {
  TraceConfig config;
  config.seed = seed;
  config.block_size = 1'000;
  config.active_hosts = 60;
  config.reply_neighbors = 12;
  return config;
}

TEST(TraceGenerator, DeterministicForSameConfig) {
  TraceGenerator a(small_config());
  TraceGenerator b(small_config());
  for (int i = 0; i < 2'000; ++i) {
    const TraceEvent ea = a.next();
    const TraceEvent eb = b.next();
    EXPECT_EQ(ea.query.guid, eb.query.guid);
    EXPECT_EQ(ea.query.source_host, eb.query.source_host);
    EXPECT_EQ(ea.reply_count, eb.reply_count);
    if (ea.reply_count > 0 && eb.reply_count > 0) {
      EXPECT_EQ(ea.replies[0].replying_neighbor, eb.replies[0].replying_neighbor);
    }
  }
}

TEST(TraceGenerator, SeedsProduceDifferentStreams) {
  TraceGenerator a(small_config(1));
  TraceGenerator b(small_config(2));
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += a.next().query.source_host == b.next().query.source_host ? 1 : 0;
  }
  EXPECT_LT(same, 50);
}

TEST(TraceGenerator, GeneratePairsExactCount) {
  TraceGenerator gen(small_config());
  const auto pairs = gen.generate_pairs(5'000);
  EXPECT_EQ(pairs.size(), 5'000u);
}

TEST(TraceGenerator, ReplyRateMatchesConfig) {
  auto config = small_config();
  config.reply_rate = 0.25;
  TraceGenerator gen(config);
  std::uint64_t answered = 0;
  constexpr int kQueries = 40'000;
  for (int i = 0; i < kQueries; ++i) {
    answered += gen.next().answered() ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(answered) / kQueries, 0.25, 0.01);
}

TEST(TraceGenerator, TimeAdvancesOneBlockPerBlockSizePairs) {
  TraceGenerator gen(small_config());
  const auto pairs = gen.generate_pairs(3'000);  // 3 blocks of 1000
  // The last pair's timestamp should be close to 3 blocks.
  EXPECT_NEAR(pairs.back().time, 3.0, 0.3);
  // Timestamps are (weakly) increasing.
  for (std::size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i].time, pairs[i - 1].time - 0.01);
  }
}

TEST(TraceGenerator, RepliesCarryQueryGuid) {
  TraceGenerator gen(small_config());
  for (int i = 0; i < 5'000; ++i) {
    const TraceEvent event = gen.next();
    for (std::uint32_t r = 0; r < event.reply_count; ++r) {
      EXPECT_EQ(event.replies[r].guid, event.query.guid);
      EXPECT_GE(event.replies[r].time, event.query.time);
    }
  }
}

TEST(TraceGenerator, ReplyNeighborsComeFromNeighborIdSpace) {
  TraceGenerator gen(small_config());
  const auto pairs = gen.generate_pairs(3'000);
  for (const auto& pair : pairs) {
    EXPECT_GE(pair.replying_neighbor, kReplyNeighborBase);
    EXPECT_LT(pair.source_host, kReplyNeighborBase);
  }
}

TEST(TraceGenerator, DuplicateGuidsAreInjectedAtConfiguredRate) {
  auto config = small_config();
  config.duplicate_guid_rate = 0.01;
  TraceGenerator gen(config);
  std::unordered_set<Guid> seen;
  std::uint64_t duplicates = 0;
  constexpr int kQueries = 50'000;
  for (int i = 0; i < kQueries; ++i) {
    if (!seen.insert(gen.next().query.guid).second) ++duplicates;
  }
  EXPECT_EQ(duplicates, gen.duplicate_guids_injected());
  EXPECT_NEAR(static_cast<double>(duplicates) / kQueries, 0.01, 0.003);
}

TEST(TraceGenerator, ZeroDuplicateRateYieldsUniqueGuids) {
  auto config = small_config();
  config.duplicate_guid_rate = 0.0;
  TraceGenerator gen(config);
  std::unordered_set<Guid> seen;
  for (int i = 0; i < 20'000; ++i) {
    EXPECT_TRUE(seen.insert(gen.next().query.guid).second);
  }
}

TEST(TraceGenerator, HostChurnIntroducesNewHosts) {
  TraceGenerator gen(small_config());
  std::set<HostId> early_hosts;
  std::set<HostId> late_hosts;
  auto pairs = gen.generate_pairs(1'000);
  for (const auto& p : pairs) early_hosts.insert(p.source_host);
  // Skip far ahead (~30 blocks), beyond the transient lifetime.
  gen.generate_pairs(30'000);
  pairs = gen.generate_pairs(1'000);
  for (const auto& p : pairs) late_hosts.insert(p.source_host);
  std::size_t overlap = 0;
  for (HostId h : late_hosts) overlap += early_hosts.contains(h) ? 1 : 0;
  // Some core hosts persist, but most of the population has turned over.
  EXPECT_GT(overlap, 0u);
  EXPECT_LT(overlap, late_hosts.size());
}

TEST(TraceGenerator, VolumeIsSkewedAcrossHosts) {
  TraceGenerator gen(small_config());
  const auto pairs = gen.generate_pairs(10'000);
  std::unordered_map<HostId, std::uint64_t> volume;
  for (const auto& p : pairs) ++volume[p.source_host];
  std::uint64_t max_volume = 0;
  for (const auto& [host, count] : volume) {
    max_volume = std::max(max_volume, count);
  }
  const double mean = 10'000.0 / static_cast<double>(volume.size());
  EXPECT_GT(static_cast<double>(max_volume), 3.0 * mean);
}

TEST(TraceGenerator, MultiReplyProducesSecondReplies) {
  auto config = small_config();
  config.multi_reply_rate = 0.5;
  TraceGenerator gen(config);
  std::uint64_t doubles = 0;
  std::uint64_t answered = 0;
  for (int i = 0; i < 20'000; ++i) {
    const TraceEvent event = gen.next();
    if (event.answered()) {
      ++answered;
      if (event.reply_count == 2) ++doubles;
    }
  }
  EXPECT_GT(answered, 0u);
  EXPECT_NEAR(static_cast<double>(doubles) / static_cast<double>(answered), 0.5,
              0.05);
}

TEST(TraceGenerator, CountersAreConsistent) {
  TraceGenerator gen(small_config());
  std::uint64_t queries = 0;
  std::uint64_t replies = 0;
  for (int i = 0; i < 10'000; ++i) {
    const TraceEvent event = gen.next();
    ++queries;
    replies += event.reply_count;
  }
  EXPECT_EQ(gen.queries_generated(), queries);
  EXPECT_EQ(gen.replies_generated(), replies);
}

// Paper-scale ratio check: queries-to-replies ≈ 10.51M / 3.25M.
TEST(TraceGenerator, PaperReplyRatioHoldsAtDefaults) {
  TraceConfig config;  // defaults
  config.block_size = 2'000;
  TraceGenerator gen(config);
  gen.generate_pairs(20'000);
  const double ratio = static_cast<double>(gen.queries_generated()) /
                       static_cast<double>(gen.replies_generated());
  EXPECT_NEAR(ratio, 10'514'090.0 / 3'254'274.0, 0.15);
}

}  // namespace
}  // namespace aar::trace
