// Quickstart: mine association rules from query-reply observations and use
// them to make forwarding decisions.
//
//   $ ./quickstart
//
// This is the 60-second tour of the core API:
//   1. generate a synthetic Gnutella-style trace (or bring your own pairs),
//   2. mine a RuleSet from one block with support pruning,
//   3. check its quality (coverage α, success ρ) on the next block,
//   4. ask a Forwarder where a query from a given neighbor should go.

#include <iostream>

#include "core/forwarder.hpp"
#include "core/measures.hpp"
#include "core/ruleset.hpp"
#include "trace/generator.hpp"

int main() {
  using namespace aar;

  // 1. A small trace: two blocks of 5,000 answered query-reply pairs.
  trace::TraceConfig config;
  config.seed = 2006;
  config.block_size = 5'000;
  trace::TraceGenerator generator(config);
  const auto pairs = generator.generate_pairs(10'000);
  const auto yesterday = std::span(pairs).subspan(0, 5'000);
  const auto today = std::span(pairs).subspan(5'000, 5'000);

  // 2. Mine rules from yesterday's traffic.  A rule {host1} -> {host2} says:
  // queries arriving from neighbor host1 were answered through neighbor
  // host2 at least min_support times.
  constexpr std::uint32_t kMinSupport = 10;
  const core::RuleSet rules = core::RuleSet::build(yesterday, kMinSupport);
  std::cout << "mined " << rules.num_rules() << " rules over "
            << rules.num_antecedents() << " antecedent hosts\n";

  // 3. Quality on today's traffic (paper Eq. 1 and 2).
  const core::BlockMeasures quality = core::evaluate(rules, today);
  std::cout << "coverage (alpha) = " << quality.coverage()
            << "  success (rho) = " << quality.success() << "\n";

  // 4. Forwarding decisions: top-1 consequent, flood when no rule matches.
  core::Forwarder forwarder({.k = 1, .mode = core::SelectionMode::kTopK});
  util::Rng rng(1);
  std::size_t rule_routed = 0;
  std::size_t flooded = 0;
  for (const trace::QueryReplyPair& pair : today) {
    const core::ForwardDecision decision =
        forwarder.decide(rules, pair.source_host, rng);
    decision.rule_routed() ? ++rule_routed : ++flooded;
  }
  std::cout << "of " << today.size() << " queries: " << rule_routed
            << " rule-routed to one neighbor, " << flooded
            << " fell back to flooding\n";

  // Peek at a few concrete rules.
  std::cout << "\nsample rules (antecedent -> top consequent, support):\n";
  std::size_t shown = 0;
  for (const auto& [antecedent, consequents] : rules.rules()) {
    std::cout << "  {" << antecedent << "} -> {" << consequents[0].neighbor
              << "}  support=" << consequents[0].support << "\n";
    if (++shown == 5) break;
  }
  return 0;
}
