// trace_analysis: the paper's Section V evaluation in miniature, end to end.
//
//   $ ./trace_analysis [blocks] [block_size] [min_support]
//
// Generates a synthetic Gnutella capture, pushes it through the relational
// pipeline (import -> GUID dedup -> query⋈reply join), then replays the pair
// table in blocks under all five rule-set maintenance strategies and prints
// the comparison the paper's Section V spreads over four figures.

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "core/strategy.hpp"
#include "core/trace_simulator.hpp"
#include "trace/database.hpp"
#include "trace/generator.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aar;
  const std::size_t blocks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 80;
  const std::size_t block_size =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10'000;
  const auto min_support = static_cast<std::uint32_t>(
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 10);

  // 1. Capture: the trace generator plays the modified Gnutella node.
  trace::TraceConfig config;
  config.seed = 42;
  trace::TraceGenerator generator(config);

  // 2. Relational pipeline (paper Section IV-A).
  trace::Database db;
  db.import(generator, (blocks + 1) * block_size);
  db.join();
  const trace::TraceSummary summary = db.summary();
  std::cout << "capture: " << util::Table::integer(static_cast<long long>(
                                  summary.queries))
            << " queries, "
            << util::Table::integer(static_cast<long long>(summary.replies))
            << " replies, "
            << util::Table::integer(static_cast<long long>(summary.pairs))
            << " joined pairs ("
            << util::Table::integer(static_cast<long long>(summary.duplicate_guids))
            << " duplicate GUIDs removed)\n\n";

  // 3. Strategy shoot-out (paper Section V).
  std::vector<std::unique_ptr<core::Strategy>> strategies;
  strategies.push_back(std::make_unique<core::StaticRuleset>(min_support));
  strategies.push_back(std::make_unique<core::SlidingWindow>(min_support));
  strategies.push_back(std::make_unique<core::LazySlidingWindow>(min_support, 10));
  strategies.push_back(
      std::make_unique<core::AdaptiveSlidingWindow>(min_support, 10));
  strategies.push_back(
      std::make_unique<core::AdaptiveSlidingWindow>(min_support, 50));
  strategies.push_back(std::make_unique<core::IncrementalRuleset>(min_support));

  util::Table table({"strategy", "avg coverage", "avg success", "min cov",
                     "rule sets", "blocks/regen"});
  for (const auto& strategy : strategies) {
    const core::SimulationResult result =
        core::run_trace_simulation(*strategy, db.pairs(), block_size);
    table.row({result.strategy, util::Table::num(result.avg_coverage(), 3),
               util::Table::num(result.avg_success(), 3),
               util::Table::num(result.coverage.min(), 3),
               std::to_string(result.rulesets_generated),
               util::Table::num(result.blocks_per_generation(), 2)});
  }
  table.print(std::cout);

  std::cout << "\nreading: static decays (churn + reply-path drift), sliding"
               " tracks the network,\nlazy trades staleness for fewer"
               " regenerations, adaptive regenerates only on quality drops,\n"
               "and incremental (the paper's future-work streaming variant)"
               " dominates both measures.\n";
  return 0;
}
