// market_basket: the classical association-analysis example the paper uses
// to introduce the technique (Section III-A) — diapers and beer, caviar and
// sugar — run through the generic aar::assoc Apriori engine.
//
//   $ ./market_basket

#include <iostream>
#include <string>
#include <vector>

#include "assoc/apriori.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {
// A tiny grocery vocabulary.
enum Item : aar::assoc::Item {
  kBread,
  kMilk,
  kDiapers,
  kBeer,
  kEggs,
  kCaviar,
  kSugar,
  kItemCount
};
const char* kNames[] = {"bread", "milk",   "diapers", "beer",
                        "eggs",  "caviar", "sugar"};

std::string items_to_string(const aar::assoc::Itemset& items) {
  std::string out = "{";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += ", ";
    out += kNames[items[i]];
  }
  return out + "}";
}
}  // namespace

int main() {
  using namespace aar;
  // Synthesize checkout transactions with planted structure: young parents
  // buy diapers and (often) beer; the occasional caviar buyer always buys
  // sugar; everyone buys staples.
  assoc::TransactionDb db;
  util::Rng rng(7);
  for (int t = 0; t < 2'000; ++t) {
    assoc::Itemset basket;
    if (rng.chance(0.6)) basket.push_back(kBread);
    if (rng.chance(0.5)) basket.push_back(kMilk);
    if (rng.chance(0.3)) basket.push_back(kEggs);
    if (rng.chance(0.25)) {  // the young-parents segment
      basket.push_back(kDiapers);
      if (rng.chance(0.75)) basket.push_back(kBeer);
    } else if (rng.chance(0.1)) {
      basket.push_back(kBeer);  // beer without diapers is rarer
    }
    if (rng.chance(0.01)) {  // the caviar connoisseurs
      basket.push_back(kCaviar);
      if (rng.chance(0.9)) basket.push_back(kSugar);
    } else if (rng.chance(0.15)) {
      basket.push_back(kSugar);
    }
    db.add(std::move(basket));
  }
  std::cout << "mined " << db.size() << " checkout transactions\n\n";

  // Mine rules with the paper's two-knob pruning: support and confidence.
  assoc::Apriori miner({.min_support_count = 20, .min_confidence = 0.6});
  const auto rules = miner.rules(db);

  util::Table table(
      {"rule", "support", "confidence", "lift", "verdict"});
  for (const auto& rule : rules) {
    if (rule.antecedent.size() != 1 || rule.consequent.size() != 1) continue;
    const double lift = rule.lift();
    const char* verdict = lift > 1.5  ? "actionable"
                          : lift > 1.05 ? "weak"
                                        : "independence";
    table.row({items_to_string(rule.antecedent) + " -> " +
                   items_to_string(rule.consequent),
               util::Table::num(rule.support(), 3),
               util::Table::num(rule.confidence(), 3),
               util::Table::num(lift, 2), verdict});
  }
  table.print(std::cout);

  // The caviar -> sugar trap: high confidence, useless support.
  const assoc::RuleCounts caviar{
      .total = db.size(),
      .count_a = db.count_support(assoc::Itemset{kCaviar}),
      .count_c = db.count_support(assoc::Itemset{kSugar}),
      .count_ac = db.count_support(assoc::Itemset{kCaviar, kSugar})};
  std::cout << "\n{caviar} -> {sugar}: confidence "
            << util::Table::num(assoc::confidence(caviar), 2) << " but support "
            << util::Table::num(assoc::support(caviar), 4)
            << " — the paper's example of a rule pruned for uselessness\n"
            << "(it never survives min_support_count=20 above).\n";
  return 0;
}
