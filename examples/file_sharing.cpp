// file_sharing: a Gnutella-style file-sharing network where half the peers
// deploy association routing, live.
//
//   $ ./file_sharing [nodes] [queries]
//
// Builds a power-law overlay with interest-clustered content, runs an
// interest-driven query workload, and shows (a) network-wide traffic under
// flooding vs association routing, and (b) what one adopting node's learned
// rule set looks like — the view the paper's modified Gnutella node had.

#include <cstdlib>
#include <iostream>
#include <memory>

#include "overlay/assoc_policy.hpp"
#include "overlay/experiment.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace aar;
  using namespace aar::overlay;
  ExperimentConfig config;
  config.seed = 99;
  config.nodes = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1'000;
  const std::size_t queries =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 3'000;
  config.warmup_queries = queries;
  config.measure_queries = queries;

  std::cout << "building a " << config.nodes
            << "-node unstructured overlay (Barabasi-Albert, Zipf content, "
               "interest-clustered stores)...\n";

  // Baseline: everyone floods.
  Network flood_net = make_network(
      config, [](NodeId) { return std::make_unique<FloodingPolicy>(); });
  const TrafficStats flooding = run_experiment("flooding", flood_net, config);

  // Treatment: everyone mines association rules from the replies they relay.
  Network assoc_net = make_network(config, [](NodeId) {
    return std::make_unique<AssociationRoutingPolicy>();
  });
  const TrafficStats assoc = run_experiment("association", assoc_net, config);

  util::Table table({"policy", "success", "msgs/query", "nodes reached",
                     "hops to hit", "fallback floods"});
  for (const TrafficStats* s : {&flooding, &assoc}) {
    table.row({s->policy, util::Table::pct(s->success_rate()),
               util::Table::num(s->total_messages.mean(), 0),
               util::Table::num(s->nodes_reached.mean(), 0),
               util::Table::num(s->hops.mean(), 2),
               util::Table::pct(s->fallback_rate(), 0)});
  }
  table.print(std::cout);
  const double saved =
      1.0 - assoc.total_messages.mean() / flooding.total_messages.mean();
  std::cout << "\nassociation routing moved " << util::Table::pct(saved, 1)
            << " of per-query traffic out of the network at "
            << util::Table::pct(assoc.success_rate() - flooding.success_rate(),
                                1)
            << " success difference.\n\n";

  // Peek inside one busy adopting node: its mined rule set.
  NodeId busiest = 0;
  for (NodeId n = 0; n < assoc_net.num_nodes(); ++n) {
    if (assoc_net.graph().degree(n) > assoc_net.graph().degree(busiest)) {
      busiest = n;
    }
  }
  const auto& policy =
      dynamic_cast<AssociationRoutingPolicy&>(assoc_net.policy(busiest));
  std::cout << "node " << busiest << " (degree "
            << assoc_net.graph().degree(busiest) << ") mined "
            << policy.rules().num_rules() << " rules; it rule-routed "
            << policy.rule_hits() << " queries and flooded " << policy.floods()
            << ".\nsample of its routing table:\n";
  std::size_t shown = 0;
  for (const auto& [antecedent, consequents] : policy.rules().rules()) {
    std::cout << "  queries from ";
    if (antecedent == busiest) {
      std::cout << "itself";
    } else {
      std::cout << "neighbor " << antecedent;
    }
    std::cout << " -> forward to neighbor " << consequents[0].neighbor
              << " (support " << consequents[0].support << ")\n";
    if (++shown == 8) break;
  }
  return 0;
}
