// wire_capture: the paper's data-collection setup, end to end on the wire.
//
//   $ ./wire_capture
//
// A "modified Gnutella node" (gnutella::CaptureNode) is attached to a few
// neighbor connections.  We synthesize actual Gnutella 0.4 byte streams —
// QUERY and QUERYHIT descriptors, including a buggy client that reuses
// GUIDs — push them through the frame decoder and relay rules, and then run
// the recorded capture through the exact pipeline of the paper: database
// import, duplicate-GUID removal, query⋈reply join, rule mining, and the
// coverage/success measures.

#include <iostream>

#include "core/measures.hpp"
#include "core/ruleset.hpp"
#include "gnutella/capture.hpp"
#include "gnutella/codec.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

int main() {
  using namespace aar;
  using namespace aar::gnutella;

  // The capture node has four neighbor connections; neighbors 1 and 2
  // forward queries from their communities, neighbors 3 and 4 lead toward
  // content (jazz via 3, blues via 4).
  double clock = 0.0;
  CaptureNode node({1, 2, 3, 4}, [&clock] { return clock += 1e-4; });
  FrameDecoder decoders[5];  // one per neighbor connection

  util::Rng rng(2006);
  const char* kJazz[] = {"miles davis", "coltrane a love supreme",
                         "mingus ah um"};
  const char* kBlues[] = {"muddy waters", "howlin wolf", "bb king live"};

  std::uint64_t guid_counter = 0;
  WireGuid reused_guid = make_wire_guid(0xbadc0de);  // the buggy client

  std::size_t bytes_total = 0;
  for (int i = 0; i < 4'000; ++i) {
    const bool jazz = rng.chance(0.5);
    const NeighborId from = jazz ? 1 : 2;
    const NeighborId answer_via = jazz ? 3 : 4;
    const char* search = jazz ? kJazz[rng.index(3)] : kBlues[rng.index(3)];

    // ~1% of queries come from the client that re-uses its GUID.
    const WireGuid guid =
        rng.chance(0.01) ? reused_guid : make_wire_guid(++guid_counter);

    // Serialize to real wire bytes, feed through the per-connection decoder
    // (split into TCP-ish chunks), then hand to the relay.
    const auto query_bytes = serialize(make_query(guid, 7, 0, search));
    bytes_total += query_bytes.size();
    decoders[from].feed(query_bytes);
    while (auto message = decoders[from].next()) {
      node.on_message(from, *message);
    }

    // ~30% of queries are answered (the paper's reply rate).
    if (rng.chance(0.31)) {
      const auto hit_bytes = serialize(make_query_hit(
          guid, 7, make_wire_guid(0x5e77e47 + rng.below(50)),
          {{.file_index = static_cast<std::uint32_t>(rng.below(1'000)),
            .file_size = 3'141'592,
            .file_name = std::string(search) + ".mp3"}}));
      bytes_total += hit_bytes.size();
      decoders[answer_via].feed(hit_bytes);
      while (auto message = decoders[answer_via].next()) {
        node.on_message(answer_via, *message);
      }
    }
  }

  std::cout << "wire capture: " << bytes_total << " bytes decoded, "
            << node.queries_seen() << " queries and " << node.hits_seen()
            << " hits observed (" << node.duplicates_dropped()
            << " duplicate GUIDs dropped by the relay)\n";

  // The paper's pipeline over the captured tables.
  trace::Database& db = node.database();
  const std::uint64_t removed = db.deduplicate_queries();
  const std::uint64_t pairs = db.join();
  std::cout << "pipeline: " << removed << " duplicate query rows removed, "
            << pairs << " query-reply pairs joined\n\n";

  // Mine rules from the first half, evaluate on the second half.
  const auto all = db.pairs();
  const auto train = all.subspan(0, all.size() / 2);
  const auto test = all.subspan(all.size() / 2);
  const core::RuleSet rules = core::RuleSet::build(train, 10);
  const core::BlockMeasures quality = core::evaluate(rules, test);

  util::Table table({"rule", "support"});
  for (const auto& [antecedent, consequents] : rules.rules()) {
    for (const auto& consequent : consequents) {
      table.row({"{neighbor " + std::to_string(antecedent) +
                     "} -> {neighbor " + std::to_string(consequent.neighbor) +
                     "}",
                 std::to_string(consequent.support)});
    }
  }
  table.print(std::cout);
  std::cout << "\ncoverage = " << quality.coverage()
            << ", success = " << quality.success()
            << "  (queries from 1 route to 3, from 2 route to 4 — the rules"
               " recovered the\n interest structure straight off the wire)\n";
  return 0;
}
